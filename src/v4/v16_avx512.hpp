// v4/v16_avx512.hpp
//
// AVX-512 (512-bit, 16-lane) implementation of the ad hoc SIMD API. A
// third full re-implementation (Fig. 1); note AVX-512 introduces opmask
// registers, so even the branching idiom differs from the AVX2 version —
// exactly the kind of per-ISA divergence the paper's portable strategies
// eliminate.
#pragma once

#if defined(__AVX512F__)

#include <immintrin.h>

namespace vpic::v4 {

class v16float_avx512 {
 public:
  static constexpr int width = 16;
  static constexpr const char* isa = "AVX512";

  v16float_avx512() : v_(_mm512_setzero_ps()) {}
  explicit v16float_avx512(float a) : v_(_mm512_set1_ps(a)) {}
  explicit v16float_avx512(__m512 v) : v_(v) {}

  static v16float_avx512 load(const float* p) {
    return v16float_avx512(_mm512_loadu_ps(p));
  }
  void store(float* p) const { _mm512_storeu_ps(p, v_); }

  static v16float_avx512 gather(const float* base, const int* idx) {
    __m512i vi = _mm512_loadu_si512(idx);
    return v16float_avx512(_mm512_i32gather_ps(vi, base, 4));
  }

  float operator[](int i) const {
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, v_);
    return tmp[i];
  }
  void set(int i, float x) {
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, v_);
    tmp[i] = x;
    v_ = _mm512_load_ps(tmp);
  }

  friend v16float_avx512 operator+(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_add_ps(a.v_, b.v_));
  }
  friend v16float_avx512 operator-(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_sub_ps(a.v_, b.v_));
  }
  friend v16float_avx512 operator*(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_mul_ps(a.v_, b.v_));
  }
  friend v16float_avx512 operator/(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_div_ps(a.v_, b.v_));
  }

  static v16float_avx512 fma(v16float_avx512 a, v16float_avx512 b,
                             v16float_avx512 c) {
    return v16float_avx512(_mm512_fmadd_ps(a.v_, b.v_, c.v_));
  }

  static v16float_avx512 sqrt(v16float_avx512 a) {
    return v16float_avx512(_mm512_sqrt_ps(a.v_));
  }

  static v16float_avx512 rsqrt(v16float_avx512 a) {
    __m512 est = _mm512_rsqrt14_ps(a.v_);
    __m512 half_a = _mm512_mul_ps(_mm512_set1_ps(0.5f), a.v_);
    __m512 e2 = _mm512_mul_ps(est, est);
    __m512 corr =
        _mm512_sub_ps(_mm512_set1_ps(1.5f), _mm512_mul_ps(half_a, e2));
    return v16float_avx512(_mm512_mul_ps(est, corr));
  }

  static v16float_avx512 min(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_min_ps(a.v_, b.v_));
  }
  static v16float_avx512 max(v16float_avx512 a, v16float_avx512 b) {
    return v16float_avx512(_mm512_max_ps(a.v_, b.v_));
  }

  /// Masked blend using AVX-512 opmasks (per-ISA branch handling).
  static v16float_avx512 select_lt(v16float_avx512 a, v16float_avx512 b,
                                   v16float_avx512 if_true,
                                   v16float_avx512 if_false) {
    __mmask16 m = _mm512_cmp_ps_mask(a.v_, b.v_, _CMP_LT_OQ);
    return v16float_avx512(_mm512_mask_blend_ps(m, if_false.v_, if_true.v_));
  }

  float hsum() const { return _mm512_reduce_add_ps(v_); }

  [[nodiscard]] __m512 raw() const { return v_; }

 private:
  __m512 v_;
};

}  // namespace vpic::v4

#endif  // __AVX512F__
