// v4/v4int.hpp
//
// Integer companions to the ad hoc float vectors — VPIC 1.2 pairs each
// vNfloat with a vNint used for cell indices, move flags and mask logic.
// As with the float classes, each ISA gets its own full implementation
// (more of the Fig. 1 duplication); the portable version defines the
// reference semantics.
#pragma once

#include <cstdint>

namespace vpic::v4 {

class v4int_portable {
 public:
  static constexpr int width = 4;
  static constexpr const char* isa = "portable";

  v4int_portable() : i_{0, 0, 0, 0} {}
  explicit v4int_portable(std::int32_t a) : i_{a, a, a, a} {}
  v4int_portable(std::int32_t a, std::int32_t b, std::int32_t c,
                 std::int32_t d)
      : i_{a, b, c, d} {}

  static v4int_portable load(const std::int32_t* p) {
    return {p[0], p[1], p[2], p[3]};
  }
  void store(std::int32_t* p) const {
    for (int k = 0; k < 4; ++k) p[k] = i_[k];
  }

  std::int32_t operator[](int k) const { return i_[k]; }
  void set(int k, std::int32_t v) { i_[k] = v; }

  friend v4int_portable operator+(v4int_portable a, v4int_portable b) {
    return {a.i_[0] + b.i_[0], a.i_[1] + b.i_[1], a.i_[2] + b.i_[2],
            a.i_[3] + b.i_[3]};
  }
  friend v4int_portable operator-(v4int_portable a, v4int_portable b) {
    return {a.i_[0] - b.i_[0], a.i_[1] - b.i_[1], a.i_[2] - b.i_[2],
            a.i_[3] - b.i_[3]};
  }
  friend v4int_portable operator*(v4int_portable a, v4int_portable b) {
    return {a.i_[0] * b.i_[0], a.i_[1] * b.i_[1], a.i_[2] * b.i_[2],
            a.i_[3] * b.i_[3]};
  }
  friend v4int_portable operator&(v4int_portable a, v4int_portable b) {
    return {a.i_[0] & b.i_[0], a.i_[1] & b.i_[1], a.i_[2] & b.i_[2],
            a.i_[3] & b.i_[3]};
  }
  friend v4int_portable operator|(v4int_portable a, v4int_portable b) {
    return {a.i_[0] | b.i_[0], a.i_[1] | b.i_[1], a.i_[2] | b.i_[2],
            a.i_[3] | b.i_[3]};
  }
  friend v4int_portable operator^(v4int_portable a, v4int_portable b) {
    return {a.i_[0] ^ b.i_[0], a.i_[1] ^ b.i_[1], a.i_[2] ^ b.i_[2],
            a.i_[3] ^ b.i_[3]};
  }
  v4int_portable operator<<(int s) const {
    return {i_[0] << s, i_[1] << s, i_[2] << s, i_[3] << s};
  }
  v4int_portable operator>>(int s) const {
    return {i_[0] >> s, i_[1] >> s, i_[2] >> s, i_[3] >> s};
  }

  /// Lane-wise a < b as an all-ones/all-zeros mask (VPIC mask idiom).
  static v4int_portable cmplt(v4int_portable a, v4int_portable b) {
    return {a.i_[0] < b.i_[0] ? -1 : 0, a.i_[1] < b.i_[1] ? -1 : 0,
            a.i_[2] < b.i_[2] ? -1 : 0, a.i_[3] < b.i_[3] ? -1 : 0};
  }
  static v4int_portable cmpeq(v4int_portable a, v4int_portable b) {
    return {a.i_[0] == b.i_[0] ? -1 : 0, a.i_[1] == b.i_[1] ? -1 : 0,
            a.i_[2] == b.i_[2] ? -1 : 0, a.i_[3] == b.i_[3] ? -1 : 0};
  }

  /// merge(mask, t, f): t where mask lanes are set, f elsewhere.
  static v4int_portable merge(v4int_portable mask, v4int_portable t,
                              v4int_portable f) {
    return (mask & t) | v4int_portable{~mask.i_[0] & f.i_[0],
                                       ~mask.i_[1] & f.i_[1],
                                       ~mask.i_[2] & f.i_[2],
                                       ~mask.i_[3] & f.i_[3]};
  }

  [[nodiscard]] bool any() const {
    return i_[0] || i_[1] || i_[2] || i_[3];
  }
  [[nodiscard]] bool all() const {
    return i_[0] && i_[1] && i_[2] && i_[3];
  }
  [[nodiscard]] std::int32_t hadd() const {
    return i_[0] + i_[1] + i_[2] + i_[3];
  }

 private:
  std::int32_t i_[4];
};

}  // namespace vpic::v4

#if defined(__SSE2__)
#include <immintrin.h>

namespace vpic::v4 {

class v4int_sse {
 public:
  static constexpr int width = 4;
  static constexpr const char* isa = "SSE";

  v4int_sse() : v_(_mm_setzero_si128()) {}
  explicit v4int_sse(std::int32_t a) : v_(_mm_set1_epi32(a)) {}
  v4int_sse(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d)
      : v_(_mm_setr_epi32(a, b, c, d)) {}
  explicit v4int_sse(__m128i v) : v_(v) {}

  static v4int_sse load(const std::int32_t* p) {
    return v4int_sse(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  void store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v_);
  }

  std::int32_t operator[](int k) const {
    alignas(16) std::int32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v_);
    return tmp[k];
  }
  void set(int k, std::int32_t x) {
    alignas(16) std::int32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v_);
    tmp[k] = x;
    v_ = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }

  friend v4int_sse operator+(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_add_epi32(a.v_, b.v_));
  }
  friend v4int_sse operator-(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_sub_epi32(a.v_, b.v_));
  }
  friend v4int_sse operator*(v4int_sse a, v4int_sse b) {
#if defined(__SSE4_1__)
    return v4int_sse(_mm_mullo_epi32(a.v_, b.v_));
#else
    alignas(16) std::int32_t xa[4], xb[4];
    a.store(xa);
    b.store(xb);
    return {xa[0] * xb[0], xa[1] * xb[1], xa[2] * xb[2], xa[3] * xb[3]};
#endif
  }
  friend v4int_sse operator&(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_and_si128(a.v_, b.v_));
  }
  friend v4int_sse operator|(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_or_si128(a.v_, b.v_));
  }
  friend v4int_sse operator^(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_xor_si128(a.v_, b.v_));
  }
  v4int_sse operator<<(int s) const {
    return v4int_sse(_mm_slli_epi32(v_, s));
  }
  v4int_sse operator>>(int s) const {
    return v4int_sse(_mm_srai_epi32(v_, s));
  }

  static v4int_sse cmplt(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_cmplt_epi32(a.v_, b.v_));
  }
  static v4int_sse cmpeq(v4int_sse a, v4int_sse b) {
    return v4int_sse(_mm_cmpeq_epi32(a.v_, b.v_));
  }
  static v4int_sse merge(v4int_sse mask, v4int_sse t, v4int_sse f) {
    return v4int_sse(_mm_or_si128(_mm_and_si128(mask.v_, t.v_),
                                  _mm_andnot_si128(mask.v_, f.v_)));
  }

  [[nodiscard]] bool any() const {
    return _mm_movemask_epi8(_mm_cmpeq_epi32(v_, _mm_setzero_si128())) !=
           0xFFFF;
  }
  [[nodiscard]] bool all() const {
    return _mm_movemask_epi8(_mm_cmpeq_epi32(v_, _mm_setzero_si128())) == 0;
  }
  [[nodiscard]] std::int32_t hadd() const {
    __m128i t = _mm_add_epi32(v_, _mm_srli_si128(v_, 8));
    t = _mm_add_epi32(t, _mm_srli_si128(t, 4));
    return _mm_cvtsi128_si32(t);
  }

  [[nodiscard]] __m128i raw() const { return v_; }

 private:
  __m128i v_;
};

}  // namespace vpic::v4
#endif  // __SSE2__

#if defined(__AVX2__)
namespace vpic::v4 {

class v8int_avx2 {
 public:
  static constexpr int width = 8;
  static constexpr const char* isa = "AVX2";

  v8int_avx2() : v_(_mm256_setzero_si256()) {}
  explicit v8int_avx2(std::int32_t a) : v_(_mm256_set1_epi32(a)) {}
  explicit v8int_avx2(__m256i v) : v_(v) {}

  static v8int_avx2 load(const std::int32_t* p) {
    return v8int_avx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  void store(std::int32_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v_);
  }

  std::int32_t operator[](int k) const {
    alignas(32) std::int32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v_);
    return tmp[k];
  }
  void set(int k, std::int32_t x) {
    alignas(32) std::int32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v_);
    tmp[k] = x;
    v_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }

  friend v8int_avx2 operator+(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_add_epi32(a.v_, b.v_));
  }
  friend v8int_avx2 operator-(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_sub_epi32(a.v_, b.v_));
  }
  friend v8int_avx2 operator*(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_mullo_epi32(a.v_, b.v_));
  }
  friend v8int_avx2 operator&(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_and_si256(a.v_, b.v_));
  }
  friend v8int_avx2 operator|(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_or_si256(a.v_, b.v_));
  }
  friend v8int_avx2 operator^(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_xor_si256(a.v_, b.v_));
  }
  v8int_avx2 operator<<(int s) const {
    return v8int_avx2(_mm256_slli_epi32(v_, s));
  }
  v8int_avx2 operator>>(int s) const {
    return v8int_avx2(_mm256_srai_epi32(v_, s));
  }

  static v8int_avx2 cmplt(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_cmpgt_epi32(b.v_, a.v_));
  }
  static v8int_avx2 cmpeq(v8int_avx2 a, v8int_avx2 b) {
    return v8int_avx2(_mm256_cmpeq_epi32(a.v_, b.v_));
  }
  static v8int_avx2 merge(v8int_avx2 mask, v8int_avx2 t, v8int_avx2 f) {
    return v8int_avx2(_mm256_blendv_epi8(f.v_, t.v_, mask.v_));
  }

  [[nodiscard]] bool any() const {
    return !_mm256_testz_si256(v_, v_);
  }
  [[nodiscard]] std::int32_t hadd() const {
    __m128i lo = _mm256_castsi256_si128(v_);
    __m128i hi = _mm256_extracti128_si256(v_, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    return _mm_cvtsi128_si32(s);
  }

  [[nodiscard]] __m256i raw() const { return v_; }

 private:
  __m256i v_;
};

}  // namespace vpic::v4
#endif  // __AVX2__

namespace vpic::v4 {

#if defined(__SSE2__)
using vint4 = v4int_sse;
#else
using vint4 = v4int_portable;
#endif

}  // namespace vpic::v4

#if defined(__AVX512F__)
namespace vpic::v4 {

class v16int_avx512 {
 public:
  static constexpr int width = 16;
  static constexpr const char* isa = "AVX512";

  v16int_avx512() : v_(_mm512_setzero_si512()) {}
  explicit v16int_avx512(std::int32_t a) : v_(_mm512_set1_epi32(a)) {}
  explicit v16int_avx512(__m512i v) : v_(v) {}

  static v16int_avx512 load(const std::int32_t* p) {
    return v16int_avx512(_mm512_loadu_si512(p));
  }
  void store(std::int32_t* p) const { _mm512_storeu_si512(p, v_); }

  std::int32_t operator[](int k) const {
    alignas(64) std::int32_t tmp[16];
    _mm512_store_si512(tmp, v_);
    return tmp[k];
  }
  void set(int k, std::int32_t x) {
    alignas(64) std::int32_t tmp[16];
    _mm512_store_si512(tmp, v_);
    tmp[k] = x;
    v_ = _mm512_load_si512(tmp);
  }

  friend v16int_avx512 operator+(v16int_avx512 a, v16int_avx512 b) {
    return v16int_avx512(_mm512_add_epi32(a.v_, b.v_));
  }
  friend v16int_avx512 operator-(v16int_avx512 a, v16int_avx512 b) {
    return v16int_avx512(_mm512_sub_epi32(a.v_, b.v_));
  }
  friend v16int_avx512 operator*(v16int_avx512 a, v16int_avx512 b) {
    return v16int_avx512(_mm512_mullo_epi32(a.v_, b.v_));
  }
  friend v16int_avx512 operator&(v16int_avx512 a, v16int_avx512 b) {
    return v16int_avx512(_mm512_and_si512(a.v_, b.v_));
  }
  friend v16int_avx512 operator|(v16int_avx512 a, v16int_avx512 b) {
    return v16int_avx512(_mm512_or_si512(a.v_, b.v_));
  }
  v16int_avx512 operator<<(int s) const {
    return v16int_avx512(_mm512_slli_epi32(v_, static_cast<unsigned>(s)));
  }
  v16int_avx512 operator>>(int s) const {
    return v16int_avx512(_mm512_srai_epi32(v_, static_cast<unsigned>(s)));
  }

  /// AVX-512 uses opmask registers for comparisons — a structurally
  /// different idiom from the SSE/AVX2 all-ones vectors (the per-ISA
  /// divergence Fig. 1 quantifies).
  static __mmask16 cmplt_mask(v16int_avx512 a, v16int_avx512 b) {
    return _mm512_cmplt_epi32_mask(a.v_, b.v_);
  }
  static v16int_avx512 merge(__mmask16 mask, v16int_avx512 t,
                             v16int_avx512 f) {
    return v16int_avx512(_mm512_mask_blend_epi32(mask, f.v_, t.v_));
  }

  [[nodiscard]] std::int32_t hadd() const {
    return _mm512_reduce_add_epi32(v_);
  }

  [[nodiscard]] __m512i raw() const { return v_; }

 private:
  __m512i v_;
};

}  // namespace vpic::v4
#endif  // __AVX512F__
