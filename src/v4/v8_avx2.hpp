// v4/v8_avx2.hpp
//
// AVX2 (256-bit, 8-lane) implementation of the ad hoc SIMD API. Again a
// full re-implementation per ISA, as in VPIC 1.2 (Fig. 1).
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

namespace vpic::v4 {

class v8float_avx2 {
 public:
  static constexpr int width = 8;
  static constexpr const char* isa = "AVX2";

  v8float_avx2() : v_(_mm256_setzero_ps()) {}
  explicit v8float_avx2(float a) : v_(_mm256_set1_ps(a)) {}
  explicit v8float_avx2(__m256 v) : v_(v) {}

  static v8float_avx2 load(const float* p) {
    return v8float_avx2(_mm256_loadu_ps(p));
  }
  void store(float* p) const { _mm256_storeu_ps(p, v_); }

  static v8float_avx2 gather(const float* base, const int* idx) {
    __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return v8float_avx2(_mm256_i32gather_ps(base, vi, 4));
  }

  float operator[](int i) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v_);
    return tmp[i];
  }
  void set(int i, float x) {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v_);
    tmp[i] = x;
    v_ = _mm256_load_ps(tmp);
  }

  friend v8float_avx2 operator+(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_add_ps(a.v_, b.v_));
  }
  friend v8float_avx2 operator-(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_sub_ps(a.v_, b.v_));
  }
  friend v8float_avx2 operator*(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_mul_ps(a.v_, b.v_));
  }
  friend v8float_avx2 operator/(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_div_ps(a.v_, b.v_));
  }

  static v8float_avx2 fma(v8float_avx2 a, v8float_avx2 b, v8float_avx2 c) {
    return v8float_avx2(_mm256_fmadd_ps(a.v_, b.v_, c.v_));
  }

  static v8float_avx2 sqrt(v8float_avx2 a) {
    return v8float_avx2(_mm256_sqrt_ps(a.v_));
  }

  static v8float_avx2 rsqrt(v8float_avx2 a) {
    __m256 est = _mm256_rsqrt_ps(a.v_);
    __m256 half_a = _mm256_mul_ps(_mm256_set1_ps(0.5f), a.v_);
    __m256 e2 = _mm256_mul_ps(est, est);
    __m256 corr =
        _mm256_sub_ps(_mm256_set1_ps(1.5f), _mm256_mul_ps(half_a, e2));
    return v8float_avx2(_mm256_mul_ps(est, corr));
  }

  static v8float_avx2 min(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_min_ps(a.v_, b.v_));
  }
  static v8float_avx2 max(v8float_avx2 a, v8float_avx2 b) {
    return v8float_avx2(_mm256_max_ps(a.v_, b.v_));
  }

  float hsum() const {
    __m128 lo = _mm256_castps256_ps128(v_);
    __m128 hi = _mm256_extractf128_ps(v_, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
  }

  /// 8x8 transpose across eight registers (unpack/shuffle/permute ladder —
  /// the kind of code that must be rewritten for each ISA).
  static void transpose(v8float_avx2& r0, v8float_avx2& r1, v8float_avx2& r2,
                        v8float_avx2& r3, v8float_avx2& r4, v8float_avx2& r5,
                        v8float_avx2& r6, v8float_avx2& r7) {
    __m256 t0 = _mm256_unpacklo_ps(r0.v_, r1.v_);
    __m256 t1 = _mm256_unpackhi_ps(r0.v_, r1.v_);
    __m256 t2 = _mm256_unpacklo_ps(r2.v_, r3.v_);
    __m256 t3 = _mm256_unpackhi_ps(r2.v_, r3.v_);
    __m256 t4 = _mm256_unpacklo_ps(r4.v_, r5.v_);
    __m256 t5 = _mm256_unpackhi_ps(r4.v_, r5.v_);
    __m256 t6 = _mm256_unpacklo_ps(r6.v_, r7.v_);
    __m256 t7 = _mm256_unpackhi_ps(r6.v_, r7.v_);

    __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));

    r0.v_ = _mm256_permute2f128_ps(s0, s4, 0x20);
    r1.v_ = _mm256_permute2f128_ps(s1, s5, 0x20);
    r2.v_ = _mm256_permute2f128_ps(s2, s6, 0x20);
    r3.v_ = _mm256_permute2f128_ps(s3, s7, 0x20);
    r4.v_ = _mm256_permute2f128_ps(s0, s4, 0x31);
    r5.v_ = _mm256_permute2f128_ps(s1, s5, 0x31);
    r6.v_ = _mm256_permute2f128_ps(s2, s6, 0x31);
    r7.v_ = _mm256_permute2f128_ps(s3, s7, 0x31);
  }

  [[nodiscard]] __m256 raw() const { return v_; }

 private:
  __m256 v_;
};

}  // namespace vpic::v4

#endif  // __AVX2__
