// v4/v4_sse.hpp
//
// SSE (128-bit) implementation of the ad hoc SIMD API. Note the wholesale
// re-implementation relative to v4_portable.hpp / v4_avx2.hpp — this is the
// per-ISA duplication VPIC 1.2 carries for every vector extension (Fig. 1).
#pragma once

#if defined(__SSE2__)

#include <immintrin.h>

namespace vpic::v4 {

class v4float_sse {
 public:
  static constexpr int width = 4;
  static constexpr const char* isa = "SSE";

  v4float_sse() : v_(_mm_setzero_ps()) {}
  explicit v4float_sse(float a) : v_(_mm_set1_ps(a)) {}
  v4float_sse(float a, float b, float c, float d)
      : v_(_mm_setr_ps(a, b, c, d)) {}
  explicit v4float_sse(__m128 v) : v_(v) {}

  static v4float_sse load(const float* p) {
    return v4float_sse(_mm_loadu_ps(p));
  }
  void store(float* p) const { _mm_storeu_ps(p, v_); }

  float operator[](int i) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v_);
    return tmp[i];
  }
  void set(int i, float x) {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v_);
    tmp[i] = x;
    v_ = _mm_load_ps(tmp);
  }

  friend v4float_sse operator+(v4float_sse a, v4float_sse b) {
    return v4float_sse(_mm_add_ps(a.v_, b.v_));
  }
  friend v4float_sse operator-(v4float_sse a, v4float_sse b) {
    return v4float_sse(_mm_sub_ps(a.v_, b.v_));
  }
  friend v4float_sse operator*(v4float_sse a, v4float_sse b) {
    return v4float_sse(_mm_mul_ps(a.v_, b.v_));
  }
  friend v4float_sse operator/(v4float_sse a, v4float_sse b) {
    return v4float_sse(_mm_div_ps(a.v_, b.v_));
  }

  static v4float_sse fma(v4float_sse a, v4float_sse b, v4float_sse c) {
#if defined(__FMA__)
    return v4float_sse(_mm_fmadd_ps(a.v_, b.v_, c.v_));
#else
    return v4float_sse(_mm_add_ps(_mm_mul_ps(a.v_, b.v_), c.v_));
#endif
  }

  static v4float_sse sqrt(v4float_sse a) {
    return v4float_sse(_mm_sqrt_ps(a.v_));
  }

  /// rsqrt estimate + one Newton-Raphson step (VPIC 1.2's idiom).
  static v4float_sse rsqrt(v4float_sse a) {
    __m128 est = _mm_rsqrt_ps(a.v_);
    // est * (1.5 - 0.5*a*est*est)
    __m128 half_a = _mm_mul_ps(_mm_set1_ps(0.5f), a.v_);
    __m128 e2 = _mm_mul_ps(est, est);
    __m128 corr = _mm_sub_ps(_mm_set1_ps(1.5f), _mm_mul_ps(half_a, e2));
    return v4float_sse(_mm_mul_ps(est, corr));
  }

  float hsum() const {
    __m128 t = _mm_add_ps(v_, _mm_movehl_ps(v_, v_));
    t = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
    return _mm_cvtss_f32(t);
  }

  static void transpose(v4float_sse& r0, v4float_sse& r1, v4float_sse& r2,
                        v4float_sse& r3) {
    _MM_TRANSPOSE4_PS(r0.v_, r1.v_, r2.v_, r3.v_);
  }

  [[nodiscard]] __m128 raw() const { return v_; }

 private:
  __m128 v_;
};

}  // namespace vpic::v4

#endif  // __SSE2__
