// v4/v4.hpp
//
// Dispatch header for the ad hoc SIMD library: picks the widest
// ISA-specific implementation the build target supports, mirroring VPIC
// 1.2's build-time selection. The `vfloat` alias is what the ad hoc
// particle-push variant codes against.
#pragma once

#include "v4/v4_portable.hpp"
#include "v4/v4int.hpp"
#include "v4/v4_sse.hpp"
#include "v4/v16_avx512.hpp"
#include "v4/v8_avx2.hpp"

namespace vpic::v4 {

#if defined(__AVX512F__)
using vfloat = v16float_avx512;
#elif defined(__AVX2__)
using vfloat = v8float_avx2;
#elif defined(__SSE2__)
using vfloat = v4float_sse;
#else
using vfloat = v4float_portable;
#endif

/// Widest-available 4-lane type (used by the 4-lane transpose paths).
#if defined(__SSE2__)
using vfloat4 = v4float_sse;
#else
using vfloat4 = v4float_portable;
#endif

constexpr const char* active_isa() noexcept { return vfloat::isa; }
constexpr int active_width() noexcept { return vfloat::width; }

}  // namespace vpic::v4
