#include "minimpi/minimpi.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include "prof/prof.hpp"
#include <exception>
#include <stdexcept>
#include <thread>

namespace vpic::mpi {

namespace {

using steady = std::chrono::steady_clock;

struct MailboxKey {
  int src;
  int dst;
  int tag;
  auto operator<=>(const MailboxKey&) const = default;
};

/// A posted message plus its modeled delivery time (post time + the
/// world's injected link latency). Matching respects per-key FIFO order:
/// only the front of a mailbox deque is ever eligible.
struct Message {
  std::vector<std::byte> bytes;
  steady::time_point ready;
};

}  // namespace

// Receives are matched lazily: irecv records the match spec and wait()/
// test() drain the mailbox. This keeps minimpi free of helper threads (no
// dangling waiters if a request is abandoned) while preserving MPI
// semantics for the exchange patterns VPIC uses: post irecvs, post isends,
// then wait.
struct Request::State {
  World* world = nullptr;
  int src = -1;
  int dst = -1;
  int tag = -1;
  void* buf = nullptr;
  std::size_t capacity = 0;
  bool done = false;
};

class World {
 public:
  explicit World(int nranks, const WorldOptions& opts = {})
      : nranks_(nranks),
        latency_(std::chrono::duration_cast<steady::duration>(
            std::chrono::duration<double, std::micro>(
                opts.latency_us > 0 ? opts.latency_us : 0))) {
    slots_.resize(static_cast<std::size_t>(nranks));
  }

  int nranks() const noexcept { return nranks_; }

  void post(int src, int dst, int tag, const void* data, std::size_t bytes) {
    Message m;
    m.bytes.assign(static_cast<const std::byte*>(data),
                   static_cast<const std::byte*>(data) + bytes);
    m.ready = steady::now() + latency_;
    {
      std::lock_guard lk(mail_mutex_);
      mail_[MailboxKey{src, dst, tag}].push_back(std::move(m));
    }
    mail_cv_.notify_all();
  }

  /// Blocking receive: pops the oldest matching *delivered* message into
  /// buf. With injected latency this sleeps out the remaining flight time
  /// of the front message when nothing else can arrive first.
  std::size_t receive(int src, int dst, int tag, void* buf,
                      std::size_t capacity) {
    std::unique_lock lk(mail_mutex_);
    const MailboxKey key{src, dst, tag};
    for (;;) {
      auto it = mail_.find(key);
      if (it != mail_.end() && !it->second.empty()) {
        Message& front = it->second.front();
        if (front.ready <= steady::now()) {
          std::vector<std::byte> msg = std::move(front.bytes);
          it->second.pop_front();
          lk.unlock();
          if (msg.size() > capacity)
            throw std::length_error(
                "minimpi: message larger than recv buffer");
          std::memcpy(buf, msg.data(), msg.size());
          return msg.size();
        }
        mail_cv_.wait_until(lk, front.ready);
      } else {
        mail_cv_.wait(lk);
      }
    }
  }

  bool try_receive(int src, int dst, int tag, void* buf,
                   std::size_t capacity, std::size_t& got) {
    std::lock_guard lk(mail_mutex_);
    auto it = mail_.find(MailboxKey{src, dst, tag});
    if (it == mail_.end() || it->second.empty()) return false;
    if (it->second.front().ready > steady::now()) return false;  // in flight
    std::vector<std::byte> msg = std::move(it->second.front().bytes);
    it->second.pop_front();
    if (msg.size() > capacity)
      throw std::length_error("minimpi: message larger than recv buffer");
    std::memcpy(buf, msg.data(), msg.size());
    got = msg.size();
    return true;
  }

  std::size_t probe(int src, int dst, int tag) {
    std::unique_lock lk(mail_mutex_);
    const MailboxKey key{src, dst, tag};
    for (;;) {
      auto it = mail_.find(key);
      if (it != mail_.end() && !it->second.empty()) {
        const Message& front = it->second.front();
        if (front.ready <= steady::now()) return front.bytes.size();
        mail_cv_.wait_until(lk, front.ready);
      } else {
        mail_cv_.wait(lk);
      }
    }
  }

  void barrier() {
    std::unique_lock lk(barrier_mutex_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
  }

  void set_slot(int rank, const void* data, std::size_t bytes) {
    auto& s = slots_[static_cast<std::size_t>(rank)];
    s.assign(static_cast<const std::byte*>(data),
             static_cast<const std::byte*>(data) + bytes);
  }
  const void* slot(int rank) const {
    return slots_[static_cast<std::size_t>(rank)].data();
  }

 private:
  int nranks_;
  steady::duration latency_{};
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<MailboxKey, std::deque<Message>> mail_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  std::vector<std::vector<std::byte>> slots_;
};

namespace detail {
void set_reduce_slot(World* w, int rank, const void* data,
                     std::size_t bytes) {
  w->set_slot(rank, data, bytes);
}
const void* get_reduce_slot(World* w, int rank) { return w->slot(rank); }
int world_size(const World* w) { return w->nranks(); }
}  // namespace detail

void Request::wait() {
  if (!state_ || state_->done) return;  // send/null request: complete
  prof::ScopedRegion region("mpi/wait_recv");
  state_->world->receive(state_->src, state_->dst, state_->tag, state_->buf,
                         state_->capacity);
  state_->done = true;
}

bool Request::test() {
  if (!state_ || state_->done) return true;
  std::size_t got = 0;
  if (state_->world->try_receive(state_->src, state_->dst, state_->tag,
                                 state_->buf, state_->capacity, got)) {
    state_->done = true;
  }
  return state_->done;
}

std::size_t wait_any(std::span<Request> reqs) {
  if (reqs.empty())
    throw std::invalid_argument("minimpi: wait_any on an empty request set");
  prof::ScopedRegion region("mpi/wait_any");
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i)
      if (reqs[i].test()) return i;
    // Nothing complete: back off briefly. The poll granularity only has to
    // be fine relative to the modeled link latencies (tens-hundreds of us).
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
}

int Comm::size() const noexcept { return world_->nranks(); }

Request Comm::isend_bytes(int dest, int tag, const void* data,
                          std::size_t bytes) {
  assert(dest >= 0 && dest < size());
  prof::ScopedRegion region("mpi/isend");
  world_->post(rank_, dest, tag, data, bytes);
  return Request{};  // buffered send: complete on return
}

Request Comm::irecv_bytes(int src, int tag, void* data, std::size_t bytes) {
  assert(src >= 0 && src < size());
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->world = world_;
  r.state_->src = src;
  r.state_->dst = rank_;
  r.state_->tag = tag;
  r.state_->buf = data;
  r.state_->capacity = bytes;
  return r;
}

std::size_t Comm::probe_bytes(int src, int tag) {
  prof::ScopedRegion region("mpi/probe");
  return world_->probe(src, rank_, tag);
}

void Comm::barrier() {
  prof::ScopedRegion region("mpi/barrier");
  world_->barrier();
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, WorldOptions{}, fn);
}

void run(int nranks, const WorldOptions& opts,
         const std::function<void(Comm&)>& fn) {
  if (nranks < 1) throw std::invalid_argument("minimpi: nranks must be >= 1");
  World world(nranks, opts);
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex err_mutex;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&world, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard lk(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

int CartTopology::neighbor(int rank, int axis, int dir) const noexcept {
  int c[3];
  coords_of(rank, c[0], c[1], c[2]);
  int v = c[axis] + dir;
  if (v < 0 || v >= dims[axis]) {
    if (!periodic[axis]) return -1;
    v = (v + dims[axis]) % dims[axis];
  }
  c[axis] = v;
  return rank_of(c[0], c[1], c[2]);
}

CartTopology make_cart(int nranks, bool periodic) {
  // Greedy near-cubic factorization: repeatedly peel the largest factor.
  CartTopology t;
  t.periodic[0] = t.periodic[1] = t.periodic[2] = periodic;
  int remaining = nranks;
  for (int d = 0; d < 3; ++d) {
    const int want = static_cast<int>(
        std::ceil(std::pow(static_cast<double>(remaining), 1.0 / (3 - d)) -
                  1e-9));
    int best = 1;
    for (int f = 1; f <= remaining; ++f)
      if (remaining % f == 0 && f <= want) best = f;
    // If nothing <= want divides remaining (other than 1), take the
    // smallest factor above want.
    if (best == 1) {
      for (int f = want; f <= remaining; ++f)
        if (remaining % f == 0) {
          best = f;
          break;
        }
    }
    t.dims[d] = best;
    remaining /= best;
  }
  t.dims[2] *= remaining;  // leftover (should be 1)
  return t;
}

}  // namespace vpic::mpi
