// minimpi/world_detail.hpp
//
// Shared-world internals used by the header-template parts of minimpi
// (allreduce). Not part of the public API.
#pragma once

#include <cstddef>

namespace vpic::mpi {

class World;

namespace detail {

/// Copy a rank's allreduce contribution into its world slot.
void set_reduce_slot(World* w, int rank, const void* data, std::size_t bytes);

/// Read another rank's contribution (valid between the two barriers of an
/// allreduce).
const void* get_reduce_slot(World* w, int rank);

int world_size(const World* w);

}  // namespace detail
}  // namespace vpic::mpi
