// minimpi/minimpi.hpp
//
// In-process message-passing substrate standing in for MPI. VPIC's
// communication pattern (paper Section 2.1) is non-blocking point-to-point
// with up to six neighbors plus small collectives; minimpi provides exactly
// that surface — ranks as threads, typed nonblocking send/recv with tag
// matching, barrier, allreduce — so the PIC engine's halo and particle
// exchange run and are testable without an MPI installation. The 512-GPU
// scaling *curves* use the analytic alpha-beta model in gpusim instead
// (see DESIGN.md substitution table); minimpi is for functional
// correctness at small rank counts.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/world_detail.hpp"

namespace vpic::mpi {

enum class ReduceOp : std::uint8_t { Sum, Min, Max };

class World;

/// Handle to a pending nonblocking operation. Sends complete immediately
/// (buffered semantics, like small-message MPI_Isend); receives complete
/// when a matching message arrives — or, with a simulated link latency
/// (WorldOptions::latency_us), once the message's modeled delivery time
/// has passed.
class Request {
 public:
  Request() = default;

  /// Block until the operation is complete (MPI_Wait).
  void wait();

  /// Nonblocking completion poll (MPI_Test): true once complete. Stable
  /// after completion — repeated calls keep returning true. The overlap
  /// scheduler polls this instead of blocking in wait().
  [[nodiscard]] bool test();

 private:
  friend class Comm;
  friend std::size_t wait_any(std::span<Request> reqs);
  struct State;
  std::shared_ptr<State> state_;
};

/// Block until at least one request completes; returns its index
/// (MPI_Waitany). Already-complete (or send/null) requests win
/// immediately, lowest index first. Throws std::invalid_argument on an
/// empty span.
std::size_t wait_any(std::span<Request> reqs);

/// World construction knobs for run(). `latency_us` injects a modeled
/// point-to-point link latency: a message becomes matchable only once
/// latency_us microseconds have elapsed since its isend. The default 0 is
/// the seed behaviour (instant delivery). This is what makes comm/compute
/// overlap *measurable* in-process (bench/step_overlap.cpp): without it a
/// buffered isend completes before the receiver ever waits.
struct WorldOptions {
  double latency_us = 0;
};

/// Per-rank communicator handle. Copyable; all copies refer to the shared
/// world.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Nonblocking typed send: the data is copied out immediately.
  template <class T>
  Request isend(int dest, int tag, std::span<const T> data) {
    return isend_bytes(dest, tag, data.data(),
                       data.size_bytes());
  }
  template <class T>
  Request isend(int dest, int tag, const T& scalar) {
    return isend_bytes(dest, tag, &scalar, sizeof(T));
  }

  /// Nonblocking typed receive into caller storage. The span must stay
  /// alive until wait(). The matching message's size must not exceed the
  /// buffer; the actual element count is available via Request after wait
  /// is not needed here — VPIC-style exchanges pre-agree sizes or send a
  /// count message first.
  template <class T>
  Request irecv(int src, int tag, std::span<T> data) {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }
  template <class T>
  Request irecv(int src, int tag, T& scalar) {
    return irecv_bytes(src, tag, &scalar, sizeof(T));
  }

  /// Blocking probe: byte size of the next message from (src, tag).
  std::size_t probe_bytes(int src, int tag);

  void barrier();

  /// In-place allreduce over `n` elements.
  template <class T>
  void allreduce(T* data, std::size_t n, ReduceOp op);

  template <class T>
  T allreduce(T value, ReduceOp op) {
    allreduce(&value, 1, op);
    return value;
  }

  /// Broadcast `n` elements from `root` to all ranks (MPI_Bcast).
  template <class T>
  void bcast(T* data, std::size_t n, int root);

  /// Broadcast a variable-length string from `root` (size first, then
  /// payload). Convenience for collective error propagation — e.g. the
  /// elastic rescale path, where rank 0 redecomposes a checkpoint and
  /// every rank must agree on whether that succeeded before restoring
  /// (core/checkpoint.cpp, docs/ELASTIC.md).
  void bcast(std::string& s, int root) {
    std::uint64_t n = s.size();
    bcast(&n, 1, root);
    if (rank() != root) s.resize(n);
    if (n != 0) bcast(s.data(), n, root);
  }

  /// Gather each rank's `n` elements to `root` in rank order (MPI_Gather).
  /// Non-root ranks return an empty vector.
  template <class T>
  std::vector<T> gather(const T* data, std::size_t n, int root);

 private:
  friend class World;
  friend void run(int, const std::function<void(Comm&)>&);
  friend void run(int, const WorldOptions&,
                  const std::function<void(Comm&)>&);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  Request isend_bytes(int dest, int tag, const void* data, std::size_t bytes);
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes);

  World* world_ = nullptr;
  int rank_ = -1;
};

/// Run `fn(comm)` on `nranks` rank-threads and join them. Exceptions thrown
/// by a rank are rethrown (first one wins) after all ranks exit.
void run(int nranks, const std::function<void(Comm&)>& fn);

/// As above with explicit world options (e.g. injected link latency).
void run(int nranks, const WorldOptions& opts,
         const std::function<void(Comm&)>& fn);

namespace detail {
// Reserved tags for the header-implemented collectives; user tags should
// stay below this range.
constexpr int kBcastTag = 0x7f000001;
constexpr int kGatherTag = 0x7f000002;
}  // namespace detail

template <class T>
void Comm::bcast(T* data, std::size_t n, int root) {
  if (rank() == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root)
        isend(r, detail::kBcastTag, std::span<const T>(data, n));
  } else {
    irecv(root, detail::kBcastTag, std::span<T>(data, n)).wait();
  }
  barrier();  // collectives are synchronizing, like their MPI namesakes
}

template <class T>
std::vector<T> Comm::gather(const T* data, std::size_t n, int root) {
  std::vector<T> out;
  if (rank() == root) {
    out.resize(n * static_cast<std::size_t>(size()));
    std::copy(data, data + n,
              out.begin() + static_cast<std::ptrdiff_t>(n) * root);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      irecv(r, detail::kGatherTag,
            std::span<T>(out.data() + n * static_cast<std::size_t>(r), n))
          .wait();
    }
  } else {
    isend(root, detail::kGatherTag, std::span<const T>(data, n));
  }
  barrier();
  return out;
}

// Template implementation of allreduce (requires world internals).
template <class T>
void Comm::allreduce(T* data, std::size_t n, ReduceOp op) {
  detail::set_reduce_slot(world_, rank_, data, n * sizeof(T));
  barrier();
  std::vector<T> acc(data, data + n);
  const int nr = size();
  for (int r = 0; r < nr; ++r) {
    if (r == rank_) continue;
    const T* other = static_cast<const T*>(detail::get_reduce_slot(world_, r));
    for (std::size_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::Sum:
          acc[i] += other[i];
          break;
        case ReduceOp::Min:
          acc[i] = other[i] < acc[i] ? other[i] : acc[i];
          break;
        case ReduceOp::Max:
          acc[i] = other[i] > acc[i] ? other[i] : acc[i];
          break;
      }
    }
  }
  barrier();  // everyone has read all slots; safe to overwrite
  std::memcpy(data, acc.data(), n * sizeof(T));
  barrier();  // slots reusable for the next collective
}

// ----------------------------------------------------------------------
// Cartesian topology helpers (MPI_Cart_* equivalents for 3-D grids).
// ----------------------------------------------------------------------

struct CartTopology {
  int dims[3] = {1, 1, 1};
  bool periodic[3] = {true, true, true};

  [[nodiscard]] int nranks() const noexcept {
    return dims[0] * dims[1] * dims[2];
  }
  [[nodiscard]] int rank_of(int cx, int cy, int cz) const noexcept {
    return (cz * dims[1] + cy) * dims[0] + cx;
  }
  void coords_of(int rank, int& cx, int& cy, int& cz) const noexcept {
    cx = rank % dims[0];
    cy = (rank / dims[0]) % dims[1];
    cz = rank / (dims[0] * dims[1]);
  }
  /// Neighbor in axis (0..2), direction -1/+1; -1 if non-periodic edge.
  [[nodiscard]] int neighbor(int rank, int axis, int dir) const noexcept;
};

/// Balanced factorization of nranks into 3 dims (MPI_Dims_create).
CartTopology make_cart(int nranks, bool periodic = true);

}  // namespace vpic::mpi
