// roofline/roofline.hpp
//
// Roofline analysis (Section 5.4, Fig. 8): arithmetic intensity and
// achieved-vs-attainable throughput per kernel, computed from the same
// counters the paper extracts with nsight-compute / rocprof-compute —
// here taken from the analytic model's KernelProfile.
#pragma once

#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernel_model.hpp"

namespace vpic::roofline {

struct RooflinePoint {
  std::string label;
  double ai = 0;               // FLOP / DRAM byte
  double gflops = 0;           // achieved
  double attainable_gflops = 0;
  double pct_peak = 0;
  double utilization = 0;      // achieved / attainable at this AI
  gpusim::Bound bound = gpusim::Bound::Dram;
};

/// Place one kernel on a device's roofline.
RooflinePoint analyze(const gpusim::DeviceSpec& dev,
                      const gpusim::KernelProfile& profile,
                      std::string label);

/// The memory/compute ridge point (AI where the roofs meet).
double ridge_ai(const gpusim::DeviceSpec& dev);

/// Multi-line text report: the device's roofs plus each kernel point.
std::string format_report(const gpusim::DeviceSpec& dev,
                          const std::vector<RooflinePoint>& points);

}  // namespace vpic::roofline
