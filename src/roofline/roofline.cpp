#include "roofline/roofline.hpp"

#include <cstdio>

namespace vpic::roofline {

RooflinePoint analyze(const gpusim::DeviceSpec& dev,
                      const gpusim::KernelProfile& profile,
                      std::string label) {
  const gpusim::KernelTiming t = gpusim::time_kernel(dev, profile);
  RooflinePoint pt;
  pt.label = std::move(label);
  pt.ai = t.ai;
  pt.gflops = t.gflops;
  pt.attainable_gflops = gpusim::roofline_attainable_gflops(dev, t.ai);
  pt.pct_peak = t.pct_peak;
  pt.utilization =
      pt.attainable_gflops > 0 ? pt.gflops / pt.attainable_gflops : 0.0;
  pt.bound = t.bound;
  return pt;
}

double ridge_ai(const gpusim::DeviceSpec& dev) {
  return dev.dram_bw_gbs > 0 ? dev.peak_fp32_gflops / dev.dram_bw_gbs : 0.0;
}

std::string format_report(const gpusim::DeviceSpec& dev,
                          const std::vector<RooflinePoint>& points) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s roofline: peak %.1f TFLOP/s (FP32), DRAM %.0f GB/s, "
                "ridge AI %.1f FLOP/B\n",
                dev.name.c_str(), dev.peak_fp32_gflops / 1e3,
                dev.dram_bw_gbs, ridge_ai(dev));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-16s %8s %12s %12s %8s %10s\n",
                "kernel", "AI", "GFLOP/s", "attainable", "%peak", "bound");
  out += buf;
  for (const auto& p : points) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %8.2f %12.1f %12.1f %7.2f%% %10s\n",
                  p.label.c_str(), p.ai, p.gflops, p.attainable_gflops,
                  p.pct_peak, gpusim::to_string(p.bound));
    out += buf;
  }
  return out;
}

}  // namespace vpic::roofline
