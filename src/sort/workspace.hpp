// sort/workspace.hpp
//
// Persistent scratch memory for the particle-sort pipeline. VPIC re-sorts
// every sort_interval steps with an (almost always) unchanged particle
// count, so the sort's key/permutation/histogram buffers are allocated
// once, grown geometrically on the rare capacity increase, and reused —
// steady-state sorting performs zero heap allocations (the property
// tests/test_sort_pipeline.cpp asserts via pk::view_alloc_count()).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pk/pk.hpp"

namespace vpic::sort {

using pk::index_t;

struct SortWorkspace {
  pk::View<std::uint32_t, 1> keys;      // cell keys of the live particles
  pk::View<std::uint32_t, 1> keys_alt;  // rewritten keys / radix ping-pong
  pk::View<index_t, 1> perm;            // permutation (radix argsort path)
  pk::View<index_t, 1> perm_alt;        // radix ping-pong partner of perm
  pk::View<std::uint32_t, 1> counts;    // per-key multiplicities (key span)
  std::vector<index_t> histogram;       // per-thread scatter offsets

  /// Number of times any buffer here was (re)allocated. Steady state must
  /// leave this constant — the zero-allocation property the tests assert.
  std::int64_t grow_count = 0;

  /// Ensure the per-particle buffers hold at least n entries.
  void reserve_pairs(index_t n) {
    if (keys.size() >= n) return;
    const index_t cap = grown(keys.size(), n);
    keys = pk::View<std::uint32_t, 1>("sort_ws_keys", cap);
    keys_alt = pk::View<std::uint32_t, 1>("sort_ws_keys_alt", cap);
    perm = pk::View<index_t, 1>("sort_ws_perm", cap);
    perm_alt = pk::View<index_t, 1>("sort_ws_perm_alt", cap);
    ++grow_count;
  }

  /// Ensure the key-multiplicity buffer spans `span` distinct keys.
  /// Contents are NOT zeroed; the key-rewrite kernels reset what they use.
  std::uint32_t* reserve_counts(index_t span) {
    if (counts.size() < span) {
      counts =
          pk::View<std::uint32_t, 1>("sort_ws_counts", grown(counts.size(), span));
      ++grow_count;
    }
    return counts.data();
  }

  /// Ensure the scatter-offset buffer holds `cells` entries.
  index_t* reserve_histogram(std::size_t cells) {
    if (histogram.size() < cells) {
      histogram.resize(std::max(cells, histogram.size() * 2));
      ++grow_count;
    }
    return histogram.data();
  }

 private:
  static index_t grown(index_t cur, index_t need) noexcept {
    const index_t cap = cur + cur / 2;
    return cap < need ? need : cap;
  }
};

}  // namespace vpic::sort
