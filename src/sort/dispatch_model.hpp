// sort/dispatch_model.hpp
//
// The counting-vs-radix dispatch cost model, as *data* rather than as
// hard-coded literals. Historically the crossover lived as magic numbers
// inside counting_sort_applicable (n/8 histogram budget, 2^18 cell
// floor); now the same inequality reads its coefficients from a mutable
// process-wide registry seeded with those legacy defaults and calibrated
// at startup by the autotuner (src/tune) from timed micro-probes on the
// actual host. Header-only and pk-only so both the sort library and the
// engine share one model with no layering cycle.
#pragma once

#include <algorithm>
#include <cstdint>

#include "pk/layout.hpp"

namespace vpic::sort {

using pk::index_t;

/// Cost model for the counting-vs-radix sort dispatch: counting sort is
/// expected to win when the histogram work, (nthreads + 1) * key_bound
/// cells, stays within max(n * cells_per_n, cells_floor). The defaults
/// encode the legacy hand-picked n/8 budget with a 2^18-cell floor; the
/// autotuner re-derives both from timed probes (clamped to
/// [1/64, 1] and [2^14, 2^22] respectively).
struct SortDispatchModel {
  double cells_per_n = 1.0 / 8.0;
  double cells_floor = static_cast<double>(index_t{1} << 18);

  [[nodiscard]] bool counting_applicable(index_t n, std::uint64_t key_bound,
                                         int nthreads) const noexcept {
    const double cells =
        static_cast<double>(nthreads + 1) * static_cast<double>(key_bound);
    const double budget =
        std::max(static_cast<double>(n) * cells_per_n, cells_floor);
    return cells <= budget;
  }
};

/// Process-wide active model. sort_by_key and core::sort_particles read
/// it on every dispatch; the autotuner (or a test pinning behavior)
/// writes it.
inline SortDispatchModel& active_sort_model() noexcept {
  static SortDispatchModel model = {};
  return model;
}

}  // namespace vpic::sort
