// sort/radix.hpp
//
// Parallel stable sort-by-key over pk Views. This is the repo's
// implementation of the Kokkos `sort_by_key` primitive that Algorithms 1
// and 2 call after rewriting the keys (paper Section 4.3: "we use the
// parallel sort_by_key function provided by Kokkos"). Stability matters:
// the strided/tiled orders rely on ties (there are none after key
// rewriting, but the standard sort path does have ties and its output
// order must be deterministic for testing).
//
// Two backends share the entry point: a single-pass counting sort
// (counting.hpp) used whenever the observed key bound is small relative to
// n — the PIC case, where keys are voxel indices < grid.nv() — and a
// general 8-bit LSD radix sort as the fallback for wide key ranges. See
// docs/SORTING.md for the cost model behind the dispatch.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "pk/pk.hpp"
#include "sort/counting.hpp"

namespace vpic::sort {

using pk::index_t;

namespace detail {

/// Number of 8-bit digit passes needed to cover values <= max_key.
template <class K>
int passes_for(K max_key) noexcept {
  int bits = 0;
  while (max_key > 0) {
    ++bits;
    max_key = static_cast<K>(max_key >> 1);
  }
  return (bits + 7) / 8;
}

/// Raw LSD radix passes over (k, v) using (tk, tv) as the ping-pong
/// partner and `offsets` (nthreads * 256 entries) as scan scratch. The
/// result is guaranteed back in (k, v): after an odd number of passes the
/// data is copied out of the temporaries. All storage is caller-provided,
/// so a caller holding a persistent workspace sorts allocation-free.
template <class K, class V>
void radix_passes(K* k, V* v, K* tk, V* tv, index_t n, int passes,
                  index_t* offsets, int nthreads) {
  constexpr int kRadix = 256;
  K* src_k = k;
  V* src_v = v;
  K* dst_k = tk;
  V* dst_v = tv;

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::fill(offsets,
              offsets + static_cast<std::size_t>(nthreads) * kRadix,
              index_t{0});

#if PK_HAVE_OPENMP
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      const index_t lo = n * tid / nthreads;
      const index_t hi = n * (tid + 1) / nthreads;
      index_t* hist = offsets + static_cast<std::size_t>(tid) * kRadix;
      for (index_t i = lo; i < hi; ++i)
        ++hist[(src_k[i] >> shift) & 0xFF];
#pragma omp barrier
#pragma omp single
      {
        // Column-major exclusive scan over (bucket, thread) so that lower
        // buckets come first and, within a bucket, lower thread ids first —
        // preserving stability.
        index_t running = 0;
        for (int b = 0; b < kRadix; ++b) {
          for (int t = 0; t < nthreads; ++t) {
            index_t& cell =
                offsets[static_cast<std::size_t>(t) * kRadix +
                        static_cast<std::size_t>(b)];
            const index_t count = cell;
            cell = running;
            running += count;
          }
        }
      }
      for (index_t i = lo; i < hi; ++i) {
        const auto b = (src_k[i] >> shift) & 0xFF;
        const index_t pos = hist[b]++;
        dst_k[pos] = src_k[i];
        dst_v[pos] = src_v[i];
      }
    }
#else
    index_t* hist = offsets;
    for (index_t i = 0; i < n; ++i) ++hist[(src_k[i] >> shift) & 0xFF];
    index_t running = 0;
    for (int b = 0; b < kRadix; ++b) {
      const index_t count = hist[b];
      hist[b] = running;
      running += count;
    }
    for (index_t i = 0; i < n; ++i) {
      const auto b = (src_k[i] >> shift) & 0xFF;
      dst_k[hist[b]] = src_k[i];
      dst_v[hist[b]] = src_v[i];
      ++hist[b];
    }
#endif
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }

  // After an odd number of passes the result lives in the temporaries.
  if (src_k != k) {
    std::memcpy(k, src_k, static_cast<std::size_t>(n) * sizeof(K));
    std::memcpy(v, src_v, static_cast<std::size_t>(n) * sizeof(V));
  }
}

/// Maximum key of a view via parallel reduce.
template <class K>
K max_key_of(const pk::View<K, 1>& keys) {
  pk::MinMaxValue<K> mm{};
  pk::parallel_reduce<pk::MinMax<K>>(
      pk::RangePolicy<>(keys.size()),
      [&](index_t i, pk::MinMaxValue<K>& acc) {
        const K k = keys(i);
        if (k < acc.min_val) acc.min_val = k;
        if (k > acc.max_val) acc.max_val = k;
      },
      mm);
  return mm.max_val;
}

}  // namespace detail

/// Stable LSD radix sort of (keys, values) pairs, ascending by key: the
/// general fallback backend, one parallel histogram + scatter per 8-bit
/// digit, skipping digits above the maximum key. Exposed for benchmarking;
/// most callers want the dispatching sort_by_key below.
template <class K, class V>
void radix_sort_by_key(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  static_assert(std::is_unsigned_v<K>, "radix keys must be unsigned");
  const index_t n = keys.size();
  if (n <= 1) return;

  const K max_key = detail::max_key_of(keys);
  const int passes = detail::passes_for(max_key);
  if (passes == 0) return;  // all keys are zero: already sorted

  pk::View<K, 1> keys_tmp("radix_keys_tmp", n);
  pk::View<V, 1> vals_tmp("radix_vals_tmp", n);
  const int nthreads = pk::DefaultExecSpace::concurrency();
  std::vector<index_t> offsets(static_cast<std::size_t>(nthreads) * 256, 0);
  detail::radix_passes(keys.data(), values.data(), keys_tmp.data(),
                       vals_tmp.data(), n, passes, offsets.data(), nthreads);
}

/// Stable sort of (keys, values) pairs, ascending by key. Dispatches on
/// the observed key bound: a single-pass counting sort when the bound is
/// small relative to n (cell-index keys), the multi-pass radix sort
/// otherwise. Same contract either way — stable, in-place semantics.
template <class K, class V>
void sort_by_key(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  static_assert(std::is_unsigned_v<K>, "sort keys must be unsigned");
  const index_t n = keys.size();
  if (n <= 1) return;

  const K max_key = detail::max_key_of(keys);
  const int passes = detail::passes_for(max_key);
  if (passes == 0) return;  // all keys are zero: already sorted

  const std::uint64_t bound = static_cast<std::uint64_t>(max_key) + 1;
  const int nthreads = pk::DefaultExecSpace::concurrency();
  if (counting_sort_applicable(n, bound, nthreads)) {
    counting_sort_by_key(keys, values, static_cast<index_t>(bound));
    return;
  }

  pk::View<K, 1> keys_tmp("radix_keys_tmp", n);
  pk::View<V, 1> vals_tmp("radix_vals_tmp", n);
  std::vector<index_t> offsets(static_cast<std::size_t>(nthreads) * 256, 0);
  detail::radix_passes(keys.data(), values.data(), keys_tmp.data(),
                       vals_tmp.data(), n, passes, offsets.data(), nthreads);
}

/// Comparison-based stable sort_by_key (std::stable_sort over an index
/// permutation + gather). Same contract as sort_by_key; exists as the
/// baseline for the radix-vs-comparison ablation (DESIGN.md section 5):
/// the O(N log N) comparison sort is what a generic Kokkos::sort falls
/// back to when no radix specialization applies.
template <class K, class V>
void sort_by_key_comparison(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  const index_t n = keys.size();
  if (n <= 1) return;
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](index_t a, index_t b) { return keys(a) < keys(b); });
  pk::View<K, 1> ks("cmp_keys", n);
  pk::View<V, 1> vs("cmp_vals", n);
  pk::parallel_for(n, [&](index_t i) {
    ks(i) = keys(perm[static_cast<std::size_t>(i)]);
    vs(i) = values(perm[static_cast<std::size_t>(i)]);
  });
  pk::deep_copy(keys, ks);
  pk::deep_copy(values, vs);
}

/// argsort: fill `perm` with the stable ascending-by-key permutation
/// (perm[rank] = original index) without disturbing `keys`.
template <class K>
void argsort(const pk::View<K, 1>& keys, pk::View<index_t, 1>& perm) {
  const index_t n = keys.size();
  pk::View<K, 1> kcopy("argsort_keys", n);
  pk::deep_copy(kcopy, keys);
  pk::parallel_for(n, [&](index_t i) { perm(i) = i; });
  sort_by_key(kcopy, perm);
}

/// Apply a permutation: dst(i) = src(perm(i)).
template <class T>
void apply_permutation(const pk::View<index_t, 1>& perm,
                       const pk::View<T, 1>& src, pk::View<T, 1>& dst) {
  pk::parallel_for(perm.size(), [&](index_t i) { dst(i) = src(perm(i)); });
}

/// In-place permutation apply by cycle-walking: data(i) <- data(perm(i))
/// with O(n) bits of scratch instead of a full second array. This is the
/// memory-footprint optimization from the VPIC memory-usage line of work
/// the paper builds on ([19, 20]: "break the 10 trillion particle
/// barrier") — at extreme particle counts the sort's double-buffer is the
/// difference between fitting and not fitting. `perm` is consumed
/// (restored on exit); serial over cycles, so use the buffered
/// apply_permutation when memory is not the constraint.
template <class T>
void apply_permutation_in_place(const pk::View<index_t, 1>& perm,
                                pk::View<T, 1>& data) {
  const index_t n = perm.size();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  for (index_t start = 0; start < n; ++start) {
    if (visited[static_cast<std::size_t>(start)] || perm(start) == start) {
      visited[static_cast<std::size_t>(start)] = true;
      continue;
    }
    // Walk the cycle containing `start`, carrying one displaced element.
    T carried = data(start);
    index_t hole = start;
    while (true) {
      visited[static_cast<std::size_t>(hole)] = true;
      const index_t src = perm(hole);
      if (src == start) {
        data(hole) = carried;
        break;
      }
      data(hole) = data(src);
      hole = src;
    }
  }
}

}  // namespace vpic::sort
