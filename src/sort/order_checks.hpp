// sort/order_checks.hpp
//
// Predicates characterizing the orders the sorting algorithms must
// produce. Used by the property-based tests: every sorter run must satisfy
// (a) permutation-of-input and (b) its order invariant.
#pragma once

#include <algorithm>
#include <vector>

#include "pk/pk.hpp"

namespace vpic::sort {

using pk::index_t;

/// Ascending (standard classification) check.
template <class K>
bool is_sorted_ascending(const pk::View<K, 1>& keys) {
  for (index_t i = 1; i < keys.size(); ++i)
    if (keys(i) < keys(i - 1)) return false;
  return true;
}

/// Strided-order check (Algorithm 1 postcondition). The rewritten keys
/// sort into blocks by occurrence index, so the output decomposes into
/// consecutive strictly-increasing runs where the k-th occurrence of every
/// key lies in run k: run 0 holds every distinct key once (ascending),
/// run 1 every key with multiplicity >= 2, and so on.
template <class K>
bool is_strided_order(const pk::View<K, 1>& keys) {
  const index_t n = keys.size();
  if (n <= 1) return true;
  K max_k = 0;
  for (index_t i = 0; i < n; ++i) max_k = std::max(max_k, keys(i));
  std::vector<index_t> occurrence(static_cast<std::size_t>(max_k) + 1, 0);

  index_t run = 0;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0 && keys(i) <= keys(i - 1)) ++run;  // new monotonic run
    auto& occ = occurrence[static_cast<std::size_t>(keys(i))];
    if (occ != run) return false;  // k-th occurrence must be in run k
    ++occ;
  }
  return true;
}

/// Tiled-strided check (Algorithm 2 postcondition): within each tile of
/// `tile_sz` slots, keys are strictly increasing and all belong to the same
/// chunk (key / tile_sz equal); no key repeats within a tile.
///
/// Tiles are delimited the way the composite key lays them out: a new tile
/// starts whenever the key does not increase, or the chunk id changes.
template <class K>
bool is_tiled_strided_order(const pk::View<K, 1>& keys, K tile_sz) {
  const index_t n = keys.size();
  if (n <= 1 || tile_sz <= 1) return true;
  index_t tile_fill = 1;
  for (index_t i = 1; i < n; ++i) {
    const bool same_chunk = (keys(i) / tile_sz) == (keys(i - 1) / tile_sz);
    const bool increasing = keys(i) > keys(i - 1);
    if (same_chunk && increasing) {
      if (++tile_fill > static_cast<index_t>(tile_sz)) return false;
    } else {
      // Tile boundary. Chunks must be non-decreasing across boundaries.
      if ((keys(i) / tile_sz) < (keys(i - 1) / tile_sz)) return false;
      tile_fill = 1;
    }
  }
  return true;
}

/// Multiset-equality: `a` is a permutation of `b`.
template <class K>
bool is_permutation_of(const pk::View<K, 1>& a, const pk::View<K, 1>& b) {
  if (a.size() != b.size()) return false;
  std::vector<K> va(a.data(), a.data() + a.size());
  std::vector<K> vb(b.data(), b.data() + b.size());
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  return va == vb;
}

/// Pairing consistency: (key, value) pairs of `a` equal those of `b` as a
/// multiset — i.e. the sorter moved keys and values together.
template <class K, class V>
bool pairs_preserved(const pk::View<K, 1>& ka, const pk::View<V, 1>& va,
                     const pk::View<K, 1>& kb, const pk::View<V, 1>& vb) {
  if (ka.size() != kb.size() || va.size() != vb.size()) return false;
  std::vector<std::pair<K, V>> pa, pb;
  pa.reserve(static_cast<std::size_t>(ka.size()));
  pb.reserve(static_cast<std::size_t>(kb.size()));
  for (index_t i = 0; i < ka.size(); ++i) pa.emplace_back(ka(i), va(i));
  for (index_t i = 0; i < kb.size(); ++i) pb.emplace_back(kb(i), vb(i));
  std::sort(pa.begin(), pa.end());
  std::sort(pb.begin(), pb.end());
  return pa == pb;
}

}  // namespace vpic::sort
