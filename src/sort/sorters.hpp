// sort/sorters.hpp
//
// The paper's hardware-targeted sorting algorithms (Section 3.2 / 4.3):
//
//  * standard_sort       — plain ascending sort by cell key: the CPU-optimal
//                          order (each thread owns one cell's particles).
//  * strided_sort        — Algorithm 1: rewrites keys so equal keys land
//                          W apart, producing repeating, strictly
//                          monotonically increasing subsequences: the
//                          GPU-coalesced order.
//  * tiled_strided_sort  — Algorithm 2: strided order within repeating
//                          tiles of TileSz distinct keys, so a tile's cell
//                          data stays cache-resident while accesses remain
//                          coalesced.
//  * random_shuffle      — worst-case baseline used by Fig. 7.
//
// All sorters operate on (keys, values) pairs exactly as the paper's
// pseudocode does; `make_*_keys` exposes the key-rewriting step alone so
// multi-field particle arrays can be permuted via argsort.
#pragma once

#include <cstdint>
#include <string>

#include "pk/pk.hpp"
#include "sort/radix.hpp"

namespace vpic::sort {

enum class SortOrder : std::uint8_t {
  Random,
  Standard,
  Strided,
  TiledStrided,
};

inline const char* to_string(SortOrder o) noexcept {
  switch (o) {
    case SortOrder::Random:
      return "random";
    case SortOrder::Standard:
      return "standard";
    case SortOrder::Strided:
      return "strided";
    case SortOrder::TiledStrided:
      return "tiled-strided";
  }
  return "?";
}

/// Result of MINMAX over the keys (Algorithms 1 & 2, line 2).
template <class K>
pk::MinMaxValue<K> key_minmax(const pk::View<K, 1>& keys) {
  pk::MinMaxValue<K> mm{};
  pk::parallel_reduce<pk::MinMax<K>>(
      pk::RangePolicy<>(keys.size()),
      [&](index_t i, pk::MinMaxValue<K>& acc) {
        const K k = keys(i);
        if (k < acc.min_val) acc.min_val = k;
        if (k > acc.max_val) acc.max_val = k;
      },
      mm);
  return mm;
}

/// Algorithm 1, lines 1-7: produce the strided-order keys.
/// new_keys(i) = (key - min_k) + occurrence * (max_k + 1), where
/// `occurrence` counts prior instances of the same key (atomically).
template <class K>
pk::View<K, 1> make_strided_keys(const pk::View<K, 1>& keys) {
  const index_t n = keys.size();
  pk::View<K, 1> new_keys("strided_keys", n);
  if (n == 0) return new_keys;

  const auto mm = key_minmax(keys);
  const K min_k = mm.min_val;
  const K max_k = mm.max_val;
  pk::View<K, 1> key_counts("key_counts", static_cast<index_t>(max_k) -
                                               static_cast<index_t>(min_k) +
                                               1);
  pk::parallel_for(n, [&](index_t i) {
    const K key = keys(i);
    const K occ = pk::atomic_fetch_add(&key_counts(key - min_k), K{1});
    new_keys(i) = static_cast<K>((key - min_k) + occ * (max_k + 1));
  });
  return new_keys;
}

/// Algorithm 2, lines 1-15: produce the tiled-strided-order keys.
/// Keys are grouped into chunks of `tile_sz` distinct key values; each
/// chunk holds max_repeat tiles; within a tile keys follow strided order.
template <class K>
pk::View<K, 1> make_tiled_strided_keys(const pk::View<K, 1>& keys,
                                       K tile_sz) {
  const index_t n = keys.size();
  pk::View<K, 1> new_keys("tiled_keys", n);
  if (n == 0) return new_keys;
  if (tile_sz < 1) tile_sz = 1;

  const auto mm = key_minmax(keys);
  const K min_k = mm.min_val;
  const K max_k = mm.max_val;
  const index_t nkeys =
      static_cast<index_t>(max_k) - static_cast<index_t>(min_k) + 1;
  pk::View<K, 1> key_counts("key_counts", nkeys);

  // Lines 4-6: histogram of key multiplicities.
  pk::parallel_for(n, [&](index_t i) {
    pk::atomic_inc(&key_counts(keys(i) - min_k));
  });

  // Line 7: max multiplicity determines tiles per chunk.
  K max_r = 0;
  pk::parallel_reduce<pk::Max<K>>(
      pk::RangePolicy<>(nkeys),
      [&](index_t i, K& acc) {
        if (key_counts(i) > acc) acc = key_counts(i);
      },
      max_r);

  // Line 8: chunk_sz = TileSz * max_r  (key slots per chunk).
  const K chunk_sz = static_cast<K>(tile_sz * max_r);

  // Line 9: reset the counting view.
  pk::deep_copy(key_counts, K{0});

  // Lines 10-15: assign each element a (chunk, tile, id) composite key.
  pk::parallel_for(n, [&](index_t i) {
    const K id = static_cast<K>(keys(i) - min_k);
    const K tile = pk::atomic_fetch_add(&key_counts(id), K{1});
    const K chunk = static_cast<K>(keys(i) / tile_sz);
    new_keys(i) = static_cast<K>(chunk * chunk_sz + tile * tile_sz + id);
  });
  return new_keys;
}

/// Standard classification (ascending by key). CPU-optimal order.
template <class K, class V>
void standard_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  sort_by_key(keys, values);
}

/// Algorithm 1 end-to-end: reorder (keys, values) into strided order.
template <class K, class V>
void strided_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  pk::View<K, 1> nk = make_strided_keys(keys);
  pk::View<K, 1> nk2("strided_keys_copy", nk.size());
  pk::deep_copy(nk2, nk);
  sort_by_key(nk, keys);    // line 8: SORT_BY_KEY(new_keys, Keys)
  sort_by_key(nk2, values); // line 9: SORT_BY_KEY(new_keys, Values)
}

/// Algorithm 2 end-to-end: reorder (keys, values) into tiled-strided order.
template <class K, class V>
void tiled_strided_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values,
                        K tile_sz) {
  pk::View<K, 1> nk = make_tiled_strided_keys(keys, tile_sz);
  pk::View<K, 1> nk2("tiled_keys_copy", nk.size());
  pk::deep_copy(nk2, nk);
  sort_by_key(nk, keys);
  sort_by_key(nk2, values);
}

/// Deterministic Fisher-Yates shuffle (worst-case order baseline).
template <class K, class V>
void random_shuffle(pk::View<K, 1>& keys, pk::View<V, 1>& values,
                    std::uint64_t seed) {
  const index_t n = keys.size();
  std::uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    // xorshift64*
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = static_cast<index_t>(next() % static_cast<std::uint64_t>(i + 1));
    std::swap(keys(i), keys(j));
    std::swap(values(i), values(j));
  }
}

/// Dispatch by SortOrder (tile_sz ignored unless TiledStrided).
template <class K, class V>
void sort_pairs(SortOrder order, pk::View<K, 1>& keys,
                pk::View<V, 1>& values, K tile_sz = 0,
                std::uint64_t seed = 12345) {
  switch (order) {
    case SortOrder::Random:
      random_shuffle(keys, values, seed);
      break;
    case SortOrder::Standard:
      standard_sort(keys, values);
      break;
    case SortOrder::Strided:
      strided_sort(keys, values);
      break;
    case SortOrder::TiledStrided:
      tiled_strided_sort(keys, values, tile_sz);
      break;
  }
}

}  // namespace vpic::sort
