// sort/sorters.hpp
//
// The paper's hardware-targeted sorting algorithms (Section 3.2 / 4.3):
//
//  * standard_sort       — plain ascending sort by cell key: the CPU-optimal
//                          order (each thread owns one cell's particles).
//  * strided_sort        — Algorithm 1: rewrites keys so equal keys land
//                          W apart, producing repeating, strictly
//                          monotonically increasing subsequences: the
//                          GPU-coalesced order.
//  * tiled_strided_sort  — Algorithm 2: strided order within repeating
//                          tiles of TileSz distinct keys, so a tile's cell
//                          data stays cache-resident while accesses remain
//                          coalesced.
//  * random_shuffle      — worst-case baseline used by Fig. 7.
//
// All sorters operate on (keys, values) pairs exactly as the paper's
// pseudocode does; `make_*_keys` exposes the key-rewriting step alone so
// multi-field particle arrays can be permuted via argsort. The rewrite
// cores report an exclusive upper bound on the rewritten keys, which is
// what lets sort_by_key pick the single-pass counting backend.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "pk/pk.hpp"
#include "sort/radix.hpp"

namespace vpic::sort {

enum class SortOrder : std::uint8_t {
  Random,
  Standard,
  Strided,
  TiledStrided,
};

inline const char* to_string(SortOrder o) noexcept {
  switch (o) {
    case SortOrder::Random:
      return "random";
    case SortOrder::Standard:
      return "standard";
    case SortOrder::Strided:
      return "strided";
    case SortOrder::TiledStrided:
      return "tiled-strided";
  }
  return "?";
}

/// Result of MINMAX over the keys (Algorithms 1 & 2, line 2).
template <class K>
pk::MinMaxValue<K> key_minmax(const pk::View<K, 1>& keys) {
  pk::MinMaxValue<K> mm{};
  pk::parallel_reduce<pk::MinMax<K>>(
      pk::RangePolicy<>(keys.size()),
      [&](index_t i, pk::MinMaxValue<K>& acc) {
        const K k = keys(i);
        if (k < acc.min_val) acc.min_val = k;
        if (k > acc.max_val) acc.max_val = k;
      },
      mm);
  return mm;
}

namespace detail {

/// Raw min/max over a key array; no heap traffic (the OpenMP reduction
/// clause keeps partials in registers / runtime storage), which keeps the
/// workspace-based sort pipeline allocation-free.
template <class K>
void key_minmax_ptr(const K* keys, index_t n, K& min_out, K& max_out) {
  K mn = std::numeric_limits<K>::max();
  K mx = std::numeric_limits<K>::lowest();
#if PK_HAVE_OPENMP
#pragma omp parallel for reduction(min : mn) reduction(max : mx) \
    schedule(static)
#endif
  for (index_t i = 0; i < n; ++i) {
    const K k = keys[i];
    if (k < mn) mn = k;
    if (k > mx) mx = k;
  }
  min_out = mn;
  max_out = mx;
}

/// Raw max over a key array (line 7 of Algorithm 2).
template <class K>
K key_max_ptr(const K* keys, index_t n) {
  K mx = std::numeric_limits<K>::lowest();
#if PK_HAVE_OPENMP
#pragma omp parallel for reduction(max : mx) schedule(static)
#endif
  for (index_t i = 0; i < n; ++i)
    if (keys[i] > mx) mx = keys[i];
  return mx;
}

/// Algorithm 1, lines 1-7, on raw storage:
/// out[i] = (keys[i] - min_k) + occurrence * span, occurrence counted
/// atomically per key. `counts` must span max_k - min_k + 1 entries (they
/// are zeroed here; on return they hold the key multiplicities). Returns
/// the exclusive upper bound on the rewritten keys: span * max multiplicity.
template <class K>
std::uint64_t strided_rewrite(const K* keys, index_t n, K min_k, K max_k,
                              K* counts, K* out) {
  const index_t span =
      static_cast<index_t>(max_k) - static_cast<index_t>(min_k) + 1;
  std::fill(counts, counts + span, K{0});
  const K span_k = static_cast<K>(span);
  pk::parallel_for(n, [=](index_t i) {
    const K key = keys[i];
    const K occ = pk::atomic_fetch_add(&counts[key - min_k], K{1});
    out[i] = static_cast<K>((key - min_k) + occ * span_k);
  });
  const K max_mult = key_max_ptr(counts, span);
  return static_cast<std::uint64_t>(span) * max_mult;
}

/// Algorithm 2, lines 1-15, on raw storage. `counts` must span
/// max_k - min_k + 1 entries (zeroed and reused internally). Returns the
/// exclusive upper bound on the composite keys.
template <class K>
std::uint64_t tiled_rewrite(const K* keys, index_t n, K min_k, K max_k,
                            K tile_sz, K* counts, K* out) {
  if (tile_sz < 1) tile_sz = 1;
  const index_t span =
      static_cast<index_t>(max_k) - static_cast<index_t>(min_k) + 1;

  // Lines 4-6: histogram of key multiplicities.
  std::fill(counts, counts + span, K{0});
  pk::parallel_for(n,
                   [=](index_t i) { pk::atomic_inc(&counts[keys[i] - min_k]); });

  // Line 7: max multiplicity determines tiles per chunk.
  const K max_r = key_max_ptr(counts, span);

  // Line 8: chunk_sz = TileSz * max_r  (key slots per chunk).
  const K chunk_sz = static_cast<K>(tile_sz * max_r);

  // Line 9: reset the counting array.
  std::fill(counts, counts + span, K{0});

  // Lines 10-15: assign each element a (chunk, tile, id) composite key.
  pk::parallel_for(n, [=](index_t i) {
    const K id = static_cast<K>(keys[i] - min_k);
    const K tile = pk::atomic_fetch_add(&counts[id], K{1});
    const K chunk = static_cast<K>(keys[i] / tile_sz);
    out[i] = static_cast<K>(chunk * chunk_sz + tile * tile_sz + id);
  });

  // Largest possible composite: max chunk, last tile, largest id.
  return static_cast<std::uint64_t>(max_k / tile_sz) * chunk_sz +
         static_cast<std::uint64_t>(max_r > 0 ? max_r - 1 : 0) * tile_sz +
         static_cast<std::uint64_t>(span - 1) + 1;
}

}  // namespace detail

/// Algorithm 1, lines 1-7: produce the strided-order keys. If
/// `key_bound_out` is non-null it receives an exclusive upper bound on the
/// returned keys (for counting-sort dispatch).
template <class K>
pk::View<K, 1> make_strided_keys(const pk::View<K, 1>& keys,
                                 std::uint64_t* key_bound_out = nullptr) {
  const index_t n = keys.size();
  pk::View<K, 1> new_keys("strided_keys", n);
  if (n == 0) {
    if (key_bound_out) *key_bound_out = 0;
    return new_keys;
  }
  K min_k, max_k;
  detail::key_minmax_ptr(keys.data(), n, min_k, max_k);
  pk::View<K, 1> key_counts("key_counts", static_cast<index_t>(max_k) -
                                              static_cast<index_t>(min_k) + 1);
  const std::uint64_t bound = detail::strided_rewrite(
      keys.data(), n, min_k, max_k, key_counts.data(), new_keys.data());
  if (key_bound_out) *key_bound_out = bound;
  return new_keys;
}

/// Algorithm 2, lines 1-15: produce the tiled-strided-order keys.
/// Keys are grouped into chunks of `tile_sz` distinct key values; each
/// chunk holds max_repeat tiles; within a tile keys follow strided order.
template <class K>
pk::View<K, 1> make_tiled_strided_keys(const pk::View<K, 1>& keys, K tile_sz,
                                       std::uint64_t* key_bound_out = nullptr) {
  const index_t n = keys.size();
  pk::View<K, 1> new_keys("tiled_keys", n);
  if (n == 0) {
    if (key_bound_out) *key_bound_out = 0;
    return new_keys;
  }
  K min_k, max_k;
  detail::key_minmax_ptr(keys.data(), n, min_k, max_k);
  pk::View<K, 1> key_counts("key_counts", static_cast<index_t>(max_k) -
                                              static_cast<index_t>(min_k) + 1);
  const std::uint64_t bound =
      detail::tiled_rewrite(keys.data(), n, min_k, max_k, tile_sz,
                            key_counts.data(), new_keys.data());
  if (key_bound_out) *key_bound_out = bound;
  return new_keys;
}

/// Standard classification (ascending by key). CPU-optimal order.
template <class K, class V>
void standard_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  sort_by_key(keys, values);
}

/// Algorithm 1 end-to-end: reorder (keys, values) into strided order.
template <class K, class V>
void strided_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values) {
  pk::View<K, 1> nk = make_strided_keys(keys);
  pk::View<K, 1> nk2("strided_keys_copy", nk.size());
  pk::deep_copy(nk2, nk);
  sort_by_key(nk, keys);    // line 8: SORT_BY_KEY(new_keys, Keys)
  sort_by_key(nk2, values); // line 9: SORT_BY_KEY(new_keys, Values)
}

/// Algorithm 2 end-to-end: reorder (keys, values) into tiled-strided order.
template <class K, class V>
void tiled_strided_sort(pk::View<K, 1>& keys, pk::View<V, 1>& values,
                        K tile_sz) {
  pk::View<K, 1> nk = make_tiled_strided_keys(keys, tile_sz);
  pk::View<K, 1> nk2("tiled_keys_copy", nk.size());
  pk::deep_copy(nk2, nk);
  sort_by_key(nk, keys);
  sort_by_key(nk2, values);
}

/// Deterministic Fisher-Yates shuffle (worst-case order baseline).
template <class K, class V>
void random_shuffle(pk::View<K, 1>& keys, pk::View<V, 1>& values,
                    std::uint64_t seed) {
  const index_t n = keys.size();
  std::uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    // xorshift64*
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = static_cast<index_t>(next() % static_cast<std::uint64_t>(i + 1));
    std::swap(keys(i), keys(j));
    std::swap(values(i), values(j));
  }
}

/// Dispatch by SortOrder (tile_sz ignored unless TiledStrided).
template <class K, class V>
void sort_pairs(SortOrder order, pk::View<K, 1>& keys,
                pk::View<V, 1>& values, K tile_sz = 0,
                std::uint64_t seed = 12345) {
  switch (order) {
    case SortOrder::Random:
      random_shuffle(keys, values, seed);
      break;
    case SortOrder::Standard:
      standard_sort(keys, values);
      break;
    case SortOrder::Strided:
      strided_sort(keys, values);
      break;
    case SortOrder::TiledStrided:
      tiled_strided_sort(keys, values, tile_sz);
      break;
  }
}

}  // namespace vpic::sort
