// sort/counting.hpp
//
// Single-pass stable counting sort-by-key for bounded keys. PIC sorting
// keys are voxel indices, provably < grid.nv(), so the general 32-bit LSD
// radix sort (up to four histogram+scatter passes) is overkill: one
// per-thread histogram, one exclusive scan over (bucket, thread), and one
// stable scatter reorder everything in O(n + nthreads * key_bound). This
// is the bin/counting sort VPIC itself and the PIC mini-app literature use
// for cell-index sorting; sort_by_key (radix.hpp) dispatches here whenever
// the key bound is small relative to n.
//
// The detail:: entry points operate on raw storage so a caller holding a
// persistent SortWorkspace (core/sort_particles.hpp) can sort with zero
// heap allocations; the View-level counting_sort_by_key mirrors the
// radix API (in-place semantics, scratch allocated per call).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "pk/pk.hpp"
#include "sort/dispatch_model.hpp"
#include "sort/workspace.hpp"

namespace vpic::sort {

using pk::index_t;

/// Largest key bound the counting path will consider (keeps the histogram
/// index arithmetic comfortably inside index_t and bounds scratch memory).
inline constexpr std::uint64_t kMaxCountingBound = std::uint64_t{1} << 30;

/// Dispatch predicate: is a counting sort over [0, key_bound) expected to
/// beat the multi-pass radix fallback for n elements? Two costs scale with
/// the bound: the O((nthreads + 1) * key_bound) zero/scan work, and the
/// scatter's write-stream spread (one open cache line per bucket, vs 256
/// per radix pass). The hard limits (n > 0, bound fits the histogram) are
/// structural; the cost crossover itself is the measured
/// sort::active_sort_model() (dispatch_model.hpp), seeded with the legacy
/// n/8-budget / 2^18-floor defaults and calibrated per host by the
/// autotuner (src/tune). PIC cell keys (ppc >= 8, so nv <= n/8) stay
/// comfortably inside the winning regime under any sane calibration.
inline bool counting_sort_applicable(index_t n, std::uint64_t key_bound,
                                     int nthreads) noexcept {
  if (n <= 0 || key_bound == 0 || key_bound > kMaxCountingBound) return false;
  return active_sort_model().counting_applicable(n, key_bound, nthreads);
}

namespace detail {

/// Offset-buffer size for (nthreads, bound): one histogram row per thread
/// plus one row of per-bucket totals used by the scan.
inline std::size_t counting_hist_cells(int nthreads, index_t bound) noexcept {
  return (static_cast<std::size_t>(nthreads) + 1) *
         static_cast<std::size_t>(bound);
}

/// Phases 1+2 of the counting sort: per-thread histograms over keys in
/// [0, bound), then an exclusive scan in (bucket-major, thread-minor)
/// order. On return offsets[t * bound + b] is the first output slot for
/// thread t's occurrences of key b — lower buckets first and, within a
/// bucket, lower thread ids first, which is what makes the scatter stable.
/// Layout is thread-major so the O(n) histogram/scatter sweeps touch
/// thread-private cache lines; only the (parallel-over-buckets) scan
/// strides across rows.
template <class K>
void counting_offsets(const K* PK_RESTRICT keys, index_t n, index_t bound,
                      index_t* PK_RESTRICT offsets, int nthreads) {
  std::fill(offsets, offsets + counting_hist_cells(nthreads, bound),
            index_t{0});
#if PK_HAVE_OPENMP
  if (nthreads > 1) {
    index_t* const totals =
        offsets + static_cast<std::size_t>(nthreads) * bound;
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      const index_t lo = n * tid / nthreads;
      const index_t hi = n * (tid + 1) / nthreads;
      index_t* hist = offsets + static_cast<std::size_t>(tid) * bound;
      for (index_t i = lo; i < hi; ++i) ++hist[keys[i]];
#pragma omp barrier
      // Within-bucket exclusive offsets over threads, plus bucket totals.
#pragma omp for schedule(static)
      for (index_t b = 0; b < bound; ++b) {
        index_t running = 0;
        for (int t = 0; t < nthreads; ++t) {
          index_t& cell = offsets[static_cast<std::size_t>(t) * bound + b];
          const index_t count = cell;
          cell = running;
          running += count;
        }
        totals[b] = running;
      }
#pragma omp single
      {
        index_t running = 0;
        for (index_t b = 0; b < bound; ++b) {
          const index_t count = totals[b];
          totals[b] = running;
          running += count;
        }
      }
#pragma omp for schedule(static)
      for (index_t b = 0; b < bound; ++b) {
        const index_t base = totals[b];
        for (int t = 0; t < nthreads; ++t)
          offsets[static_cast<std::size_t>(t) * bound + b] += base;
      }
    }
    return;
  }
#endif
  (void)nthreads;
  for (index_t i = 0; i < n; ++i) ++offsets[keys[i]];
  index_t running = 0;
  for (index_t b = 0; b < bound; ++b) {
    const index_t count = offsets[b];
    offsets[b] = running;
    running += count;
  }
}

/// Phase 3: stable scatter. For each input i (per-thread ascending over the
/// same ranges counting_offsets histogrammed), dst[offsets[key]++] = src[i].
/// `offsets` is consumed. keys_out (optional) receives the sorted keys.
template <class K, class V>
void counting_scatter(const K* PK_RESTRICT keys, const V* PK_RESTRICT src,
                      index_t n, index_t bound, index_t* PK_RESTRICT offsets,
                      int nthreads, V* PK_RESTRICT dst,
                      K* PK_RESTRICT keys_out = nullptr) {
#if PK_HAVE_OPENMP
  if (nthreads > 1) {
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      const index_t lo = n * tid / nthreads;
      const index_t hi = n * (tid + 1) / nthreads;
      index_t* hist = offsets + static_cast<std::size_t>(tid) * bound;
      for (index_t i = lo; i < hi; ++i) {
        const index_t pos = hist[keys[i]]++;
        dst[pos] = src[i];
        if (keys_out) keys_out[pos] = keys[i];
      }
    }
    return;
  }
#endif
  (void)nthreads;
  (void)bound;
  for (index_t i = 0; i < n; ++i) {
    const index_t pos = offsets[keys[i]]++;
    dst[pos] = src[i];
    if (keys_out) keys_out[pos] = keys[i];
  }
}

/// Reconstruct the sorted key array from the histogram alone: the sorted
/// keys are `count[b]` copies of b, ascending, so a sequential per-bucket
/// fill replaces the random scatter of the key array entirely (half the
/// scatter's random-write traffic). `bucket_ends` is the LAST thread's
/// offset row after counting_scatter consumed it — the scatter leaves each
/// cell at the end of that thread's slice, so the final thread's row holds
/// each bucket's one-past-the-end slot (bucket b starts where b-1 ends).
template <class K>
void counting_fill_keys(const index_t* PK_RESTRICT bucket_ends, index_t bound,
                        K* PK_RESTRICT keys_out) {
#if PK_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (index_t b = 0; b < bound; ++b) {
    const index_t lo = b > 0 ? bucket_ends[b - 1] : index_t{0};
    std::fill(keys_out + lo, keys_out + bucket_ends[b], static_cast<K>(b));
  }
#else
  for (index_t b = 0; b < bound; ++b) {
    const index_t lo = b > 0 ? bucket_ends[b - 1] : index_t{0};
    std::fill(keys_out + lo, keys_out + bucket_ends[b], static_cast<K>(b));
  }
#endif
}

/// Scatter of the implicit identity permutation: perm_out[rank] = original
/// index. Lets the argsort path skip both the identity fill and the value
/// array entirely.
template <class K>
void counting_scatter_index(const K* PK_RESTRICT keys, index_t n,
                            index_t bound, index_t* PK_RESTRICT offsets,
                            int nthreads, index_t* PK_RESTRICT perm_out) {
#if PK_HAVE_OPENMP
  if (nthreads > 1) {
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      const index_t lo = n * tid / nthreads;
      const index_t hi = n * (tid + 1) / nthreads;
      index_t* hist = offsets + static_cast<std::size_t>(tid) * bound;
      for (index_t i = lo; i < hi; ++i) perm_out[hist[keys[i]]++] = i;
    }
    return;
  }
#endif
  (void)nthreads;
  (void)bound;
  for (index_t i = 0; i < n; ++i) perm_out[offsets[keys[i]]++] = i;
}

}  // namespace detail

/// One-pass stable counting sort of (keys, values), ascending by key.
/// Keys must lie in [0, key_bound). Exactly one histogram and one scatter
/// sweep over the data (vs one pair per 8-bit digit for radix). `ws`
/// (optional) supplies the histogram buffer so repeated calls reuse it;
/// the two scratch views are still allocated per call to preserve the
/// in-place API — callers that need the fully allocation-free path use
/// the detail:: entry points with persistent storage (see
/// core/sort_particles.hpp).
template <class K, class V>
void counting_sort_by_key(pk::View<K, 1>& keys, pk::View<V, 1>& values,
                          index_t key_bound, SortWorkspace* ws = nullptr) {
  static_assert(std::is_unsigned_v<K>, "counting keys must be unsigned");
  const index_t n = keys.size();
  if (n <= 1) return;
  const int nthreads = pk::DefaultExecSpace::concurrency();
  const std::size_t cells = detail::counting_hist_cells(nthreads, key_bound);
  std::vector<index_t> local;
  index_t* offsets;
  if (ws) {
    offsets = ws->reserve_histogram(cells);
  } else {
    local.resize(cells);
    offsets = local.data();
  }
  detail::counting_offsets(keys.data(), n, key_bound, offsets, nthreads);
  pk::View<V, 1> vals_out("counting_vals_out", n);
  detail::counting_scatter(keys.data(), values.data(), n, key_bound, offsets,
                           nthreads, vals_out.data());
  // The sorted keys are implied by the histogram — rebuild them with a
  // sequential per-bucket fill (directly into `keys`, now that the scatter
  // has read them) instead of random-scattering a second array.
  detail::counting_fill_keys(
      offsets + static_cast<std::size_t>(nthreads - 1) * key_bound, key_bound,
      keys.data());
  std::memcpy(values.data(), vals_out.data(),
              static_cast<std::size_t>(n) * sizeof(V));
}

}  // namespace vpic::sort
