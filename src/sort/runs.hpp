// sort/runs.hpp
//
// Run segmentation over cell-keyed sequences: the bridge between the
// sorting library (which produces cell-sorted particle arrays) and the
// run-aware particle push (which exploits them, docs/PUSH.md). A "run" is
// a maximal range of consecutive slots sharing one cell key; after a
// Standard-order sort every cell's particles form exactly one run, so the
// push can hoist the cell's interpolator gather and batch its current
// deposit once per run instead of once per particle.
//
// Segmentation is order-agnostic: on unsorted input it simply yields many
// short runs (worst case: length-1 runs on alternating keys), so a
// consumer is always correct and only *fast* when the input is sorted.
// The sampled RunProbe below is the cheap screen the push uses to decide
// whether run-aware processing will pay off; its exhaustive limit agrees
// with order_checks.hpp's is_sorted_ascending (see cell_sorted_exact).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pk/pk.hpp"
#include "sort/order_checks.hpp"

namespace vpic::sort {

using pk::index_t;

/// One maximal range of equal cell keys: particles [begin, begin+count).
struct CellRun {
  std::int32_t cell;
  index_t begin;
  index_t count;
};

/// Walk [0, n) yielding maximal equal-key runs, in slot order.
/// KeyFn: index_t -> key (any equality-comparable integer type);
/// Fn: (key, begin, count).
template <class KeyFn, class Fn>
void for_each_run(index_t n, KeyFn&& key, Fn&& fn) {
  index_t begin = 0;
  while (begin < n) {
    const auto k = key(begin);
    index_t end = begin + 1;
    while (end < n && key(end) == k) ++end;
    fn(k, begin, end - begin);
    begin = end;
  }
}

/// Materialize the runs of [0, n) into `out` (cleared first; capacity is
/// reused, so a persistent buffer makes steady-state segmentation
/// allocation-free once grown).
template <class KeyFn>
void segment_runs(index_t n, KeyFn&& key, std::vector<CellRun>& out) {
  out.clear();
  for_each_run(n, key, [&out](auto k, index_t begin, index_t count) {
    out.push_back(CellRun{static_cast<std::int32_t>(k), begin, count});
  });
}

/// Sampled order statistics of a key sequence: `samples` adjacent pairs
/// probed at evenly strided offsets. same_cell_fraction estimates the
/// probability that slot i+1 continues slot i's run (so the expected run
/// length is its geometric mean, mean_run_estimate); ascending_fraction
/// == 1 on every sample is the sampled version of the Standard-order
/// postcondition. When samples covers every adjacent pair the probe is
/// exhaustive and ascending_fraction() == 1 exactly when
/// order_checks.hpp's is_sorted_ascending holds.
struct RunProbe {
  index_t samples = 0;
  index_t same_cell = 0;  // sampled pairs with key[i] == key[i+1]
  index_t ascending = 0;  // sampled pairs with key[i] <= key[i+1]

  [[nodiscard]] double same_cell_fraction() const noexcept {
    return samples ? static_cast<double>(same_cell) / samples : 0.0;
  }
  [[nodiscard]] double ascending_fraction() const noexcept {
    return samples ? static_cast<double>(ascending) / samples : 1.0;
  }
  /// Expected run length implied by the sampled boundary rate (capped at
  /// samples + 1 when no boundary was seen).
  [[nodiscard]] double mean_run_estimate() const noexcept {
    if (samples == 0) return 1.0;
    const index_t boundaries = samples - same_cell;
    if (boundaries == 0) return static_cast<double>(samples + 1);
    return static_cast<double>(samples) / static_cast<double>(boundaries);
  }
};

/// Probe up to `max_samples` adjacent pairs of the n-key sequence at
/// evenly strided offsets. O(max_samples), deterministic. With
/// max_samples >= n - 1 every adjacent pair is visited (the exhaustive
/// limit above).
template <class KeyFn>
RunProbe probe_runs(index_t n, KeyFn&& key, index_t max_samples = 64) {
  RunProbe pr;
  if (n < 2 || max_samples <= 0) return pr;
  const index_t pairs = n - 1;
  const index_t take = std::min(pairs, max_samples);
  for (index_t s = 0; s < take; ++s) {
    const index_t i = take > 1 ? (pairs - 1) * s / (take - 1) : index_t{0};
    const auto a = key(i);
    const auto b = key(i + 1);
    ++pr.samples;
    if (a == b) ++pr.same_cell;
    if (!(b < a)) ++pr.ascending;
  }
  return pr;
}

/// Full-certainty sortedness check on materialized keys — delegates to the
/// order_checks predicate the property tests use. The sampled probe above
/// is the per-step screen; this is the test/bench-time oracle.
template <class K>
bool cell_sorted_exact(const pk::View<K, 1>& keys) {
  return is_sorted_ascending(keys);
}

}  // namespace vpic::sort
