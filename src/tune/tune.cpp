// tune/tune.cpp — see tune.hpp for the module contract.
#include "tune/tune.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/accumulator.hpp"
#include "core/grid.hpp"
#include "core/interpolator.hpp"
#include "core/particle.hpp"
#include "core/push.hpp"
#include "prof/prof.hpp"
#include "sort/counting.hpp"
#include "sort/radix.hpp"

namespace vpic::tune {

namespace {

using core::index_t;

// Clamp ranges: a noisy probe (or a hostile cache file) may bias the
// dispatch, but can never push a gate far enough to disable a code path
// or blow up scratch memory.
constexpr index_t kMinParticlesLo = 64, kMinParticlesHi = 4096;
constexpr int kMaxStaleLo = 8, kMaxStaleHi = 256;
constexpr double kMinMeanRunLo = 2.0, kMinMeanRunHi = 16.0;
constexpr double kCellsPerNLo = 1.0 / 64.0, kCellsPerNHi = 1.0;
constexpr double kCellsFloorLo = static_cast<double>(index_t{1} << 14);
constexpr double kCellsFloorHi = static_cast<double>(index_t{1} << 22);

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall time of the fastest of `reps` calls to f().
template <class F>
double time_min(int reps, F&& f) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    f();
    best = std::min(best, now_s() - t0);
  }
  return best;
}

core::PushGates clamp_gates(core::PushGates g) {
  g.min_particles = std::clamp(g.min_particles, kMinParticlesLo, kMinParticlesHi);
  g.max_stale = std::clamp(g.max_stale, kMaxStaleLo, kMaxStaleHi);
  g.min_mean_run = std::clamp(g.min_mean_run, kMinMeanRunLo, kMinMeanRunHi);
  return g;
}

core::SortDispatchModel clamp_model(core::SortDispatchModel m) {
  m.cells_per_n = std::clamp(m.cells_per_n, kCellsPerNLo, kCellsPerNHi);
  m.cells_floor = std::clamp(m.cells_floor, kCellsFloorLo, kCellsFloorHi);
  return m;
}

bool gates_in_range(const core::PushGates& g) {
  return std::isfinite(g.min_mean_run) &&
         g.min_particles >= kMinParticlesLo &&
         g.min_particles <= kMinParticlesHi && g.max_stale >= kMaxStaleLo &&
         g.max_stale <= kMaxStaleHi && g.min_mean_run >= kMinMeanRunLo &&
         g.min_mean_run <= kMinMeanRunHi;
}

bool model_in_range(const core::SortDispatchModel& m) {
  return std::isfinite(m.cells_per_n) && std::isfinite(m.cells_floor) &&
         m.cells_per_n >= kCellsPerNLo && m.cells_per_n <= kCellsPerNHi &&
         m.cells_floor >= kCellsFloorLo && m.cells_floor <= kCellsFloorHi;
}

void install(const TuneState& s) {
  for (int i = 0; i < core::kNumParticleLayouts; ++i)
    core::active_push_gates(core::kAllParticleLayouts[i]) = s.gates[i];
  sort::active_sort_model() = s.sort_model;
}

// ---- JSON helpers (writer + the tolerant targeted reader) --------------
//
// The cache is a fixed, flat schema; rather than a general JSON parser we
// extract the known keys and validate hard. Anything missing, non-numeric
// or truncated yields TuneErrorKind::Parse and the caller falls back.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it simple
    out.push_back(c);
  }
  return out;
}

/// Find `"key"` at or after `from`; return the index just past the ':'
/// that follows it, or npos.
std::size_t find_key(const std::string& text, const std::string& key,
                     std::size_t from) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::string::npos;
  std::size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t' ||
                             text[p] == '\n' || text[p] == '\r'))
    ++p;
  if (p >= text.size() || text[p] != ':') return std::string::npos;
  return p + 1;
}

std::optional<double> read_number(const std::string& text,
                                  const std::string& key, std::size_t from) {
  const std::size_t p = find_key(text, key, from);
  if (p == std::string::npos) return std::nullopt;
  const char* start = text.c_str() + p;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start || !std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<std::string> read_string(const std::string& text,
                                       const std::string& key,
                                       std::size_t from) {
  std::size_t p = find_key(text, key, from);
  if (p == std::string::npos) return std::nullopt;
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t' ||
                             text[p] == '\n' || text[p] == '\r'))
    ++p;
  if (p >= text.size() || text[p] != '"') return std::nullopt;
  const std::size_t close = text.find('"', p + 1);
  if (close == std::string::npos) return std::nullopt;
  return text.substr(p + 1, close - p - 1);
}

// ---- push probe ---------------------------------------------------------

/// Synthetic probe species: `ppc` particles per interior cell of an
/// 8x8x8 grid, zero momentum (the push then never moves a particle, so
/// one filled array serves every timing rep), cells assigned either in
/// sorted order (maximal runs of length ppc) or round-robin (runs of 1).
void fill_probe_species(core::Species& sp, const core::Grid& g, int ppc,
                        bool sorted) {
  const index_t cells = g.interior_cells();
  const index_t n = cells * ppc;
  std::vector<std::int32_t> voxels(static_cast<std::size_t>(cells));
  index_t c = 0;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix)
        voxels[static_cast<std::size_t>(c++)] =
            static_cast<std::int32_t>(g.voxel(ix, iy, iz));
  for (index_t i = 0; i < n; ++i) {
    core::Particle p{};
    // sorted: ppc consecutive particles share a cell. round-robin: every
    // particle lands in a different cell than its neighbors.
    const index_t cell_idx = sorted ? i / ppc : i % cells;
    p.i = voxels[static_cast<std::size_t>(cell_idx)];
    p.dx = 0.1f;
    p.dy = -0.2f;
    p.dz = 0.3f;
    p.w = 1.0f;
    sp.p.set(i, p);
  }
  sp.np = n;
  sp.mark_sorted(sorted);
}

}  // namespace

const char* to_string(TuneErrorKind k) noexcept {
  switch (k) {
    case TuneErrorKind::IoError:
      return "io_error";
    case TuneErrorKind::BadSchema:
      return "bad_schema";
    case TuneErrorKind::Parse:
      return "parse";
    case TuneErrorKind::StaleFingerprint:
      return "stale_fingerprint";
    case TuneErrorKind::OutOfRange:
      return "out_of_range";
  }
  return "?";
}

const char* to_string(Source s) noexcept {
  switch (s) {
    case Source::Defaults:
      return "defaults";
    case Source::Cache:
      return "cache";
    case Source::Probes:
      return "probes";
  }
  return "?";
}

std::string host_fingerprint() {
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) != 0) {
    const char* env = std::getenv("HOSTNAME");
    std::snprintf(host, sizeof(host), "%s", env ? env : "unknown");
  }
  const char* isa =
#if defined(__AVX512F__)
      "avx512";
#elif defined(__AVX2__)
      "avx2";
#elif defined(__SSE2__)
      "sse2";
#elif defined(__ARM_NEON)
      "neon";
#else
      "scalar";
#endif
  const char* compiler =
#if defined(__clang__)
      "clang";
#elif defined(__GNUC__)
      "gcc";
#else
      "unknown";
#endif
  std::ostringstream os;
  os << "vpictune1;host=" << host
     << ";threads=" << pk::DefaultExecSpace::concurrency() << ";isa=" << isa
     << ";w=" << core::kManualVecWidth << ";tile=" << core::kAosoaTileWidth
     << ";compiler=" << compiler <<
#if defined(__GNUC__) && !defined(__clang__)
      "-" << __GNUC__;
#else
      "";
#endif
  return os.str();
}

std::string default_cache_path() {
  const char* env = std::getenv("VPIC_TUNE");
  if (env != nullptr && env[0] != '\0') {
    const std::string v(env);
    if (v == "off") return "";
    if (v != "force") return v;  // explicit cache path
  }
  return ".vpic_tune.json";
}

core::PushGates probe_push_gates(core::ParticleLayout layout,
                                 double* gen_cost_s) {
  const core::Grid g(8, 8, 8, 8.f, 8.f, 8.f, core::Grid::courant_dt(1, 1, 1));
  core::InterpolatorArray interp(g);  // zero fields: particles never move
  core::AccumulatorArray acc(g);
  constexpr int kPpc = 32;
  const index_t n = g.interior_cells() * kPpc;

  core::Species sp("tune_probe", -1.0f, 1.0f, n, layout);
  const auto strat = core::VectorStrategy::Manual;
  constexpr int kReps = 3;

  // Long runs (length kPpc): per-particle cost ~ c_inf.
  fill_probe_species(sp, g, kPpc, /*sorted=*/true);
  const double t_gen = time_min(kReps, [&] {
    core::advance_species(sp, interp, acc, g, strat, {},
                          core::PushPath::Generic);
  });
  const double t_long = time_min(kReps, [&] {
    core::advance_species(sp, interp, acc, g, strat, {},
                          core::PushPath::RunAware);
  });

  // Runs of length 1: per-particle cost ~ c_inf + c_overhead.
  fill_probe_species(sp, g, kPpc, /*sorted=*/false);
  const double t_short = time_min(kReps, [&] {
    core::advance_species(sp, interp, acc, g, strat, {},
                          core::PushPath::RunAware);
  });

  // Small-n fixed overhead (segmentation pass, run vector, region setup).
  fill_probe_species(sp, g, kPpc, /*sorted=*/true);
  const index_t n_small = 64;
  sp.np = n_small;
  const double t_small = time_min(kReps, [&] {
    core::advance_species(sp, interp, acc, g, strat, {},
                          core::PushPath::RunAware);
  });

  const double nn = static_cast<double>(n);
  const double per_gen = t_gen / nn;
  if (gen_cost_s != nullptr) *gen_cost_s = per_gen;
  const double per_long = t_long / nn;  // ~ c_inf + c_over/kPpc
  const double per_short = t_short / nn;
  const double c_over = std::max(per_short - per_long, 0.0);
  const double c_inf = std::max(per_long - c_over / kPpc, 0.0);
  const double benefit = per_gen - c_inf;  // savings per particle at r->inf

  core::PushGates gates;  // start from the defaults
  if (benefit <= 1e-12) {
    // Run-aware never wins on this host/layout: gate it as hard as the
    // clamps allow (the path stays reachable; forced RunAware is honored).
    gates.min_mean_run = kMinMeanRunHi;
    gates.max_stale = kMaxStaleLo;
    gates.min_particles = kMinParticlesHi;
    return clamp_gates(gates);
  }
  // Break-even mean run length: c_inf + c_over / r == per_gen.
  gates.min_mean_run = c_over / benefit;
  // Staleness budget scales with how much the fast path wins when it hits
  // (per_gen / per_long): a bigger win justifies probing longer after the
  // last sort, a marginal one gives up sooner.
  gates.max_stale =
      static_cast<int>(64.0 * std::min(per_gen / std::max(per_long, 1e-12),
                                       4.0));
  // Below this count the fixed dispatch overhead eats the benefit.
  const double fixed =
      std::max(t_small - static_cast<double>(n_small) * per_long, 0.0);
  gates.min_particles = static_cast<index_t>(fixed / benefit);
  return clamp_gates(gates);
}

core::SortDispatchModel probe_sort_model() {
  const int nthreads = pk::DefaultExecSpace::concurrency();
  const index_t n = index_t{1} << 15;
  constexpr int kReps = 3;
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };

  std::vector<std::uint32_t> base(static_cast<std::size_t>(n));
  for (auto& k : base) k = static_cast<std::uint32_t>(next());

  std::vector<std::uint32_t> keys(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> vals(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> tk(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> tv(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> out(static_cast<std::size_t>(n));
  std::vector<index_t> offsets;

  // Timed counting sort (offsets + scatter — the two bound-scaling
  // passes) at bound `b`; key regeneration and the histogram zero-fill
  // happen outside the timer.
  auto timed_counting = [&](index_t b) {
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      for (index_t i = 0; i < n; ++i) {
        keys[static_cast<std::size_t>(i)] =
            base[static_cast<std::size_t>(i)] %
            static_cast<std::uint32_t>(b);
        vals[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
      }
      offsets.assign(sort::detail::counting_hist_cells(nthreads, b), 0);
      const double t0 = now_s();
      sort::detail::counting_offsets(keys.data(), n, b, offsets.data(),
                                     nthreads);
      sort::detail::counting_scatter(keys.data(), vals.data(), n, b,
                                     offsets.data(), nthreads, out.data());
      best = std::min(best, now_s() - t0);
    }
    return best;
  };

  auto timed_radix = [&](index_t nn, index_t b) {
    const int passes = sort::detail::passes_for(
        static_cast<std::uint32_t>(b > 0 ? b - 1 : 0));
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      for (index_t i = 0; i < nn; ++i) {
        keys[static_cast<std::size_t>(i)] =
            base[static_cast<std::size_t>(i)] %
            static_cast<std::uint32_t>(b);
        vals[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
      }
      offsets.assign(static_cast<std::size_t>(nthreads) * 256, 0);
      const double t0 = now_s();
      sort::detail::radix_passes(keys.data(), vals.data(), tk.data(),
                                 tv.data(), nn, passes, offsets.data(),
                                 nthreads);
      best = std::min(best, now_s() - t0);
    }
    return best;
  };

  // Fit counting cost ~ a*n + b_cell*cells from two bounds.
  const index_t b1 = index_t{1} << 10;
  const index_t b2 = index_t{1} << 17;
  const double cells1 =
      static_cast<double>(sort::detail::counting_hist_cells(nthreads, b1));
  const double cells2 =
      static_cast<double>(sort::detail::counting_hist_cells(nthreads, b2));
  const double tc1 = timed_counting(b1);
  const double tc2 = timed_counting(b2);
  const double b_cell = (tc2 - tc1) / std::max(cells2 - cells1, 1.0);
  const double a_n = std::max(tc1 - b_cell * cells1, 0.0);

  core::SortDispatchModel m;  // defaults as the fallback
  if (b_cell <= 0) return clamp_model(m);

  // Crossover at the probe size: counting wins while
  // a*n + b_cell*cells <= t_radix.
  const double t_radix = timed_radix(n, b2);
  const double cells_star = (t_radix - a_n) / b_cell;
  if (cells_star > 0) m.cells_per_n = cells_star / static_cast<double>(n);

  // Floor: the same crossover at small n, where per-element costs are
  // negligible and the bound-scaling work dominates both sides.
  const index_t n0 = index_t{1} << 12;
  const double t_radix_small = timed_radix(n0, b2);
  const double a_small =
      a_n * static_cast<double>(n0) / static_cast<double>(n);
  const double floor_star = (t_radix_small - a_small) / b_cell;
  if (floor_star > 0) m.cells_floor = floor_star;

  return clamp_model(m);
}

std::string encode_cache(const TuneState& s) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"VPICTUNE1\",\n  \"fingerprint\": \""
     << json_escape(s.fingerprint) << "\",\n  \"push_gates\": {\n";
  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    const core::PushGates& g = s.gates[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"min_particles\": %lld, \"max_stale\": %d, "
                  "\"min_mean_run\": %.17g, \"gen_s_per_particle\": %.17g}%s\n",
                  core::to_string(core::kAllParticleLayouts[i]),
                  static_cast<long long>(g.min_particles), g.max_stale,
                  g.min_mean_run, s.push_cost_s[i],
                  i + 1 < core::kNumParticleLayouts ? "," : "");
    os << buf;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  },\n  \"sort_model\": {\"cells_per_n\": %.17g, "
                "\"cells_floor\": %.17g}\n}\n",
                s.sort_model.cells_per_n, s.sort_model.cells_floor);
  os << buf;
  return os.str();
}

std::optional<TuneError> decode_cache(const std::string& text,
                                      const std::string& expect_fingerprint,
                                      TuneState& out) {
  const auto schema = read_string(text, "schema", 0);
  if (!schema || *schema != "VPICTUNE1")
    return TuneError{TuneErrorKind::BadSchema,
                     schema ? "schema is '" + *schema + "'"
                            : "no schema key"};
  const auto fp = read_string(text, "fingerprint", 0);
  if (!fp) return TuneError{TuneErrorKind::Parse, "no fingerprint key"};
  if (*fp != expect_fingerprint)
    return TuneError{TuneErrorKind::StaleFingerprint,
                     "cache is for '" + *fp + "'"};

  const std::size_t gates_at = find_key(text, "push_gates", 0);
  if (gates_at == std::string::npos)
    return TuneError{TuneErrorKind::Parse, "no push_gates object"};

  core::PushGates gates[core::kNumParticleLayouts];
  double push_cost[core::kNumParticleLayouts] = {};
  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    const char* name = core::to_string(core::kAllParticleLayouts[i]);
    const std::size_t at = find_key(text, name, gates_at);
    if (at == std::string::npos)
      return TuneError{TuneErrorKind::Parse,
                       std::string("no gates for layout ") + name};
    const auto mp = read_number(text, "min_particles", at);
    const auto ms = read_number(text, "max_stale", at);
    const auto mr = read_number(text, "min_mean_run", at);
    if (!mp || !ms || !mr)
      return TuneError{TuneErrorKind::Parse,
                       std::string("incomplete gates for layout ") + name};
    gates[i].min_particles = static_cast<index_t>(*mp);
    gates[i].max_stale = static_cast<int>(*ms);
    gates[i].min_mean_run = *mr;
    if (!gates_in_range(gates[i]))
      return TuneError{TuneErrorKind::OutOfRange,
                       std::string("gates out of range for layout ") + name};
    // Optional (added after VPICTUNE1 shipped): tolerate its absence so
    // existing cache files stay valid; nonsense values degrade to
    // "unknown" rather than rejecting the whole cache. Bounded to this
    // layout's object so a pre-field cache can't borrow the next
    // layout's value.
    const std::size_t next =
        i + 1 < core::kNumParticleLayouts
            ? find_key(text, core::to_string(core::kAllParticleLayouts[i + 1]),
                       at)
            : find_key(text, "sort_model", at);
    const std::size_t pc_at = find_key(text, "gen_s_per_particle", at);
    if (pc_at != std::string::npos &&
        (next == std::string::npos || pc_at < next)) {
      const auto pc = read_number(text, "gen_s_per_particle", at);
      if (pc && std::isfinite(*pc) && *pc > 0) push_cost[i] = *pc;
    }
  }

  const std::size_t model_at = find_key(text, "sort_model", 0);
  if (model_at == std::string::npos)
    return TuneError{TuneErrorKind::Parse, "no sort_model object"};
  const auto cpn = read_number(text, "cells_per_n", model_at);
  const auto cf = read_number(text, "cells_floor", model_at);
  if (!cpn || !cf)
    return TuneError{TuneErrorKind::Parse, "incomplete sort_model"};
  core::SortDispatchModel model;
  model.cells_per_n = *cpn;
  model.cells_floor = *cf;
  if (!model_in_range(model))
    return TuneError{TuneErrorKind::OutOfRange, "sort_model out of range"};

  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    out.gates[i] = gates[i];
    out.push_cost_s[i] = push_cost[i];
  }
  out.sort_model = model;
  return std::nullopt;
}

TuneState initialize_from(const std::string& cache_path, bool force) {
  TuneState s;
  s.cache_path = cache_path;
  s.fingerprint = host_fingerprint();

  if (!force && !cache_path.empty()) {
    std::ifstream in(cache_path, std::ios::binary);
    if (!in) {
      // Normal on first run: probe and write below.
      s.cache_error = TuneError{TuneErrorKind::IoError, "cannot open file"};
      prof::counter_add("tune.cache.miss");
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string text = buf.str();
      auto err = decode_cache(text, s.fingerprint, s);
      if (!err) {
        s.source = Source::Cache;
        prof::counter_add("tune.cache.hit");
        install(s);
        return s;
      }
      s.cache_error = std::move(err);
      prof::counter_add(s.cache_error->kind == TuneErrorKind::StaleFingerprint
                            ? "tune.cache.stale"
                            : "tune.cache.corrupt");
    }
  }
  if (force) prof::counter_add("tune.forced");

  {
    prof::ScopedRegion r("tune_probe");
    for (int i = 0; i < core::kNumParticleLayouts; ++i)
      s.gates[i] =
          probe_push_gates(core::kAllParticleLayouts[i], &s.push_cost_s[i]);
    s.sort_model = probe_sort_model();
    s.source = Source::Probes;
    prof::counter_add("tune.probe");
  }

  if (!cache_path.empty()) {
    // Write-through via rename so a crash mid-write never leaves a
    // half-cache for the next run to reject.
    const std::string tmp = cache_path + ".tmp";
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    bool ok = static_cast<bool>(outf);
    if (ok) {
      outf << encode_cache(s);
      outf.flush();
      ok = static_cast<bool>(outf);
      outf.close();
    }
    if (!ok || std::rename(tmp.c_str(), cache_path.c_str()) != 0) {
      std::remove(tmp.c_str());
      prof::counter_add("tune.cache.write_failed");
    } else {
      prof::counter_add("tune.cache.written");
    }
  }

  install(s);
  return s;
}

namespace {
std::mutex g_mu;
std::optional<TuneState> g_state;
}  // namespace

const TuneState& ensure_initialized() {
  std::lock_guard lk(g_mu);
  if (!g_state) {
    const char* env = std::getenv("VPIC_TUNE");
    if (env != nullptr && std::string_view(env) == "off") {
      TuneState s;  // built-in defaults
      s.fingerprint = host_fingerprint();
      prof::counter_add("tune.disabled");
      install(s);
      g_state = std::move(s);
    } else {
      const bool force = env != nullptr && std::string_view(env) == "force";
      g_state = initialize_from(default_cache_path(), force);
    }
  }
  return *g_state;
}

double push_cost_per_particle(core::ParticleLayout layout) {
  const TuneState& s = ensure_initialized();
  for (int i = 0; i < core::kNumParticleLayouts; ++i)
    if (core::kAllParticleLayouts[i] == layout) return s.push_cost_s[i];
  return 0.0;
}

void reset_for_testing() {
  std::lock_guard lk(g_mu);
  g_state.reset();
  core::reset_tuning_defaults();
}

}  // namespace vpic::tune
