// tune/tune.hpp
//
// vpic::tune — startup autotuning of the hot-path dispatch cost models
// (docs/LAYOUT.md, "Autotuning"). The engine's two runtime dispatch
// decisions — run-aware vs generic push (core::active_push_gates, one set
// of gates per particle layout) and counting vs radix sort
// (sort::active_sort_model) — historically used hand-picked constants.
// This module replaces them with values measured on the actual host:
//
//  * micro-probes (< ~50 ms total, run once per process) time the real
//    push kernels per layout at long and short same-cell run lengths and
//    the real counting/radix sorters at two key bounds, then solve the
//    crossover models for the gate values;
//  * results are persisted in a versioned JSON cache ("VPICTUNE1") keyed
//    by a host/build fingerprint (hostname, thread count, SIMD ISA/width,
//    compiler, AoSoA tile width), so later runs on the same host skip the
//    probes;
//  * a corrupt, unreadable, or stale-fingerprint cache NEVER aborts the
//    run: loading yields a typed TuneError, the built-in defaults (or
//    fresh probes) are used instead, and the event is visible as a
//    vpic::prof counter ("tune.cache.corrupt" / "tune.cache.stale").
//
// Environment knob VPIC_TUNE:
//   off      — skip probing and the cache; keep built-in defaults.
//   force    — re-probe even when a valid cache exists, then rewrite it.
//   <path>   — use <path> as the cache file (default ".vpic_tune.json").
//
// Entry point: ensure_initialized() — idempotent, thread-safe via static
// init, called from Simulation's constructor so every deck, test and
// bench runs tuned without wiring.
#pragma once

#include <optional>
#include <string>

#include "core/push_tuning.hpp"

namespace vpic::tune {

// ---------------------------------------------------------------------------
// Typed cache-load failure (satellite requirement: fall back, don't abort).
// ---------------------------------------------------------------------------

enum class TuneErrorKind : std::uint8_t {
  IoError,           // file missing/unreadable (normal on first run)
  BadSchema,         // not a VPICTUNE1 document
  Parse,             // structurally broken JSON / missing or non-numeric key
  StaleFingerprint,  // valid cache from a different host/build
  OutOfRange,        // parsed values outside the sane clamp ranges
};

const char* to_string(TuneErrorKind k) noexcept;

struct TuneError {
  TuneErrorKind kind = TuneErrorKind::IoError;
  std::string detail;
};

// ---------------------------------------------------------------------------
// Tuned values + provenance.
// ---------------------------------------------------------------------------

enum class Source : std::uint8_t {
  Defaults,  // VPIC_TUNE=off, or probing was impossible
  Cache,     // loaded from a fingerprint-matching VPICTUNE1 file
  Probes,    // measured this process (cache miss/stale/corrupt or force)
};

const char* to_string(Source s) noexcept;

struct TuneState {
  Source source = Source::Defaults;
  std::string cache_path;   // resolved cache file ("" when disabled)
  std::string fingerprint;  // this host/build's fingerprint string
  // Why a present cache file was not used (unset on hit / first run).
  std::optional<TuneError> cache_error;
  core::PushGates gates[core::kNumParticleLayouts];
  core::SortDispatchModel sort_model;
  // Measured generic-push cost (seconds per particle) per layout, from
  // the same probe that solves the gates. 0 = unknown (defaults / old
  // cache file without the field) — consumers fall back to uniform
  // costs. Used to seed tile-task placement (docs/TILES.md).
  double push_cost_s[core::kNumParticleLayouts] = {};
};

// ---------------------------------------------------------------------------
// Pieces, exposed for tests and the layout_autotune bench.
// ---------------------------------------------------------------------------

/// Host/build identity string, e.g.
/// "vpictune1;host=node12;threads=8;isa=avx2;w=8;tile=8;compiler=gcc-13".
/// Any field changing invalidates cached probe results.
[[nodiscard]] std::string host_fingerprint();

/// Resolve the cache path from VPIC_TUNE (empty => tuning disabled).
[[nodiscard]] std::string default_cache_path();

/// Probe the run-aware push crossover for one layout. Times the generic
/// and run-aware Manual kernels on a synthetic cell-resident species at
/// long and short run lengths, then solves
///   cost_run(r) = c_inf + c_overhead / r  ==  cost_generic
/// for the break-even mean run length. All outputs are clamped:
/// min_particles in [64, 4096], max_stale in [8, 256], min_mean_run in
/// [2, 16] — so a noisy probe can bias dispatch but never disable a path
/// outright.
/// When `gen_cost_s` is non-null it receives the measured generic-push
/// cost in seconds per particle (TuneState::push_cost_s).
[[nodiscard]] core::PushGates probe_push_gates(core::ParticleLayout layout,
                                               double* gen_cost_s = nullptr);

/// Probe the counting-vs-radix crossover: fit the counting sort's
/// per-cell cost from two timed bounds, time the radix fallback, and
/// solve for the histogram-cell budget. Clamped: cells_per_n in
/// [1/64, 1], cells_floor in [2^14, 2^22].
[[nodiscard]] core::SortDispatchModel probe_sort_model();

/// Serialize a state to the VPICTUNE1 JSON document.
[[nodiscard]] std::string encode_cache(const TuneState& s);

/// Parse `text` against `expect_fingerprint`. On success fills gates +
/// sort_model in `out` and returns nullopt; otherwise returns the typed
/// error and leaves `out` untouched.
[[nodiscard]] std::optional<TuneError> decode_cache(
    const std::string& text, const std::string& expect_fingerprint,
    TuneState& out);

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Idempotent process-wide initialization: resolve VPIC_TUNE, load or
/// probe, install the results into core::active_push_gates() /
/// sort::active_sort_model(), and fire the prof counters. Returns the
/// resulting state (stable reference for the process lifetime).
const TuneState& ensure_initialized();

/// Run the load-or-probe pipeline explicitly against `cache_path`
/// ("" => no cache I/O) — the testable core of ensure_initialized().
/// `force` skips the cache read (VPIC_TUNE=force).
[[nodiscard]] TuneState initialize_from(const std::string& cache_path,
                                        bool force);

/// Tuned generic-push cost for `layout` in seconds per particle, or 0
/// when unknown (tuning disabled, or a cache written before the field
/// existed). Triggers ensure_initialized(). The tiled step multiplies
/// this by each tile's population to seed work-stealing placement.
[[nodiscard]] double push_cost_per_particle(core::ParticleLayout layout);

/// Test hook: forget the memoized ensure_initialized() result and restore
/// the built-in defaults in every registry.
void reset_for_testing();

}  // namespace vpic::tune
