// simd/transpose.hpp
//
// In-register transpose helpers. Section 4.2: "We also implement functions
// for transposing data in registers. These functions help accelerate data
// loading and storing in VPIC and require much less instruction set
// specific code than the ad hoc vectorization strategy."
//
// The particle push loads W particles of AoS data (dx, dy, dz, cell, ux,
// uy, uz, q : 8 floats per particle) and wants them as SoA vectors. A WxW
// transpose of W vector registers does the conversion with shuffles; here
// it is expressed once with __builtin_shuffle / generic lane moves and
// lowers to native permutes on every ISA the compiler supports.
#pragma once

#include <array>

#include "simd/vec.hpp"

namespace vpic::simd {

/// Transpose a WxW tile held in W simd registers, in place.
/// rows[i][j] becomes rows[j][i].
template <class T, int W>
void transpose(std::array<simd<T, W>, W>& rows) {
  if constexpr (W == 4) {
    using S = typename simd<T, W>::storage_type;
    using MaskV = typename vec_storage<mask_element_t<T>, W>::type;
    S r0 = rows[0].raw(), r1 = rows[1].raw(), r2 = rows[2].raw(),
      r3 = rows[3].raw();
    // Stage 1: interleave pairs.
    S t0 = __builtin_shuffle(r0, r1, MaskV{0, 4, 1, 5});  // a0 b0 a1 b1
    S t1 = __builtin_shuffle(r2, r3, MaskV{0, 4, 1, 5});  // c0 d0 c1 d1
    S t2 = __builtin_shuffle(r0, r1, MaskV{2, 6, 3, 7});  // a2 b2 a3 b3
    S t3 = __builtin_shuffle(r2, r3, MaskV{2, 6, 3, 7});  // c2 d2 c3 d3
    // Stage 2: interleave 64-bit halves.
    rows[0] = simd<T, W>(__builtin_shuffle(t0, t1, MaskV{0, 1, 4, 5}));
    rows[1] = simd<T, W>(__builtin_shuffle(t0, t1, MaskV{2, 3, 6, 7}));
    rows[2] = simd<T, W>(__builtin_shuffle(t2, t3, MaskV{0, 1, 4, 5}));
    rows[3] = simd<T, W>(__builtin_shuffle(t2, t3, MaskV{2, 3, 6, 7}));
  } else {
    // Generic lane-exchange fallback; GCC turns the fixed-trip-count loops
    // into shuffle sequences for the widths it can.
    std::array<simd<T, W>, W> out;
    for (int i = 0; i < W; ++i)
      for (int j = 0; j < W; ++j) out[j].set(i, rows[i][j]);
    rows = out;
  }
}

/// Load W structs of W contiguous T each, returning SoA vectors:
/// out[f][p] = base[(first_struct + p)*stride + f].
template <class T, int W>
std::array<simd<T, W>, W> load_transpose(const T* base, int stride) {
  std::array<simd<T, W>, W> rows;
  for (int p = 0; p < W; ++p) rows[static_cast<std::size_t>(p)] =
      simd<T, W>::load(base + static_cast<std::ptrdiff_t>(p) * stride);
  transpose<T, W>(rows);
  return rows;
}

/// Inverse of load_transpose: store SoA vectors back as AoS structs.
template <class T, int W>
void store_transpose(std::array<simd<T, W>, W> rows, T* base, int stride) {
  transpose<T, W>(rows);
  for (int p = 0; p < W; ++p)
    rows[static_cast<std::size_t>(p)].store(
        base + static_cast<std::ptrdiff_t>(p) * stride);
}

}  // namespace vpic::simd
