// simd/abi.hpp
//
// ABI layer of the portable SIMD library (the repo's stand-in for the
// KokkosSIMD / C++26 std::simd library used by the paper's "manual
// vectorization" strategy, Section 4.2). Storage is GCC vector extensions,
// which lower to native AVX2/AVX-512/NEON instructions without per-ISA
// source: the property the paper contrasts against VPIC 1.2's 57%-of-code
// ad hoc intrinsics library.
#pragma once

#include <cstdint>

namespace vpic::simd {

/// Widths are elements per vector. Supported: 1 (scalar), 2, 4, 8, 16.
template <class T, int W>
struct vec_storage;

// GCC requires the vector_size value to be a literal constant in the
// attribute, so the (type, width) grid is enumerated explicitly.
#define VPIC_SIMD_STORAGE(T, W)                                      \
  template <>                                                        \
  struct vec_storage<T, W> {                                         \
    typedef T type __attribute__((vector_size(sizeof(T) * (W))));    \
  };

#define VPIC_SIMD_STORAGE_ALL_W(T) \
  VPIC_SIMD_STORAGE(T, 2)          \
  VPIC_SIMD_STORAGE(T, 4)          \
  VPIC_SIMD_STORAGE(T, 8)          \
  VPIC_SIMD_STORAGE(T, 16)

VPIC_SIMD_STORAGE_ALL_W(float)
VPIC_SIMD_STORAGE_ALL_W(double)
VPIC_SIMD_STORAGE_ALL_W(std::int32_t)
VPIC_SIMD_STORAGE_ALL_W(std::int64_t)
VPIC_SIMD_STORAGE_ALL_W(std::uint32_t)
VPIC_SIMD_STORAGE_ALL_W(std::uint64_t)

#undef VPIC_SIMD_STORAGE_ALL_W
#undef VPIC_SIMD_STORAGE

// Width-1 degenerate case used by the scalar ABI.
template <class T>
struct vec_storage<T, 1> {
  using type = T;
};

/// Signed integer type with the same size as T (mask element type).
template <class T>
struct mask_element;
template <>
struct mask_element<float> {
  using type = std::int32_t;
};
template <>
struct mask_element<double> {
  using type = std::int64_t;
};
template <>
struct mask_element<std::int32_t> {
  using type = std::int32_t;
};
template <>
struct mask_element<std::int64_t> {
  using type = std::int64_t;
};
template <>
struct mask_element<std::uint32_t> {
  using type = std::int32_t;
};
template <>
struct mask_element<std::uint64_t> {
  using type = std::int64_t;
};
template <class T>
using mask_element_t = typename mask_element<T>::type;

/// Native register width in bytes for the build target.
constexpr int native_vector_bytes() noexcept {
#if defined(__AVX512F__)
  return 64;
#elif defined(__AVX2__) || defined(__AVX__)
  return 32;
#elif defined(__SSE2__) || defined(__ARM_NEON)
  return 16;
#else
  return 8;  // fall back to a 2-lane double / 2-lane float pseudo vector
#endif
}

/// Native lane count for element type T on this target. This is the value
/// the "manual" strategy uses; the paper's A64FX anomaly (Kokkos SIMD
/// lacking 512-bit SVE, Fig. 3) corresponds to this returning less than the
/// hardware width on platforms whose ISA the SIMD library does not cover.
template <class T>
constexpr int native_width() noexcept {
  constexpr int w = native_vector_bytes() / static_cast<int>(sizeof(T));
  return w < 1 ? 1 : w;
}

/// Name of the ISA the vector extensions lower to (for reports).
constexpr const char* native_isa_name() noexcept {
#if defined(__AVX512F__)
  return "AVX512";
#elif defined(__AVX2__)
  return "AVX2";
#elif defined(__AVX__)
  return "AVX";
#elif defined(__SSE2__)
  return "SSE2";
#elif defined(__ARM_NEON)
  return "NEON";
#else
  return "generic";
#endif
}

}  // namespace vpic::simd
