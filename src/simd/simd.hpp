// simd/simd.hpp — umbrella header for the portable SIMD library.
#pragma once

#include "simd/abi.hpp"
#include "simd/math.hpp"
#include "simd/transpose.hpp"
#include "simd/vec.hpp"
