// simd/vec.hpp
//
// simd<T, W> and simd_mask<T, W>: the value types of the manual
// vectorization strategy. API follows the C++26 std::simd shape that
// KokkosSIMD implements (broadcast construction, copy_from/copy_to,
// operator overloads, masks from comparisons, where()-style blending,
// lane reductions, gathers/scatters).
#pragma once

#include <cassert>
#include <cmath>
#include <cstring>

#include "simd/abi.hpp"

namespace vpic::simd {

template <class T, int W>
class simd_mask;

template <class T, int W = native_width<T>()>
class simd {
 public:
  using value_type = T;
  using storage_type = typename vec_storage<T, W>::type;
  using mask_type = simd_mask<T, W>;
  static constexpr int size() noexcept { return W; }

  simd() : v_{} {}

  /// Broadcast.
  simd(T scalar) {  // NOLINT(google-explicit-constructor): std::simd allows it
    if constexpr (W == 1) {
      v_ = scalar;
    } else {
      for (int i = 0; i < W; ++i) v_[i] = scalar;
    }
  }

  // Raw-storage constructor; suppressed for W == 1 where storage_type
  // would collide with the broadcast constructor.
  template <int WW = W, class = std::enable_if_t<WW != 1>>
  explicit simd(storage_type raw) : v_(raw) {}

  /// Lane-index generator: {f(0), f(1), ..., f(W-1)}.
  template <class Gen,
            class = decltype(std::declval<Gen>()(0))>
  explicit simd(const Gen& gen) {
    if constexpr (W == 1) {
      v_ = gen(0);
    } else {
      for (int i = 0; i < W; ++i) v_[i] = gen(i);
    }
  }

  /// {0, 1, 2, ...} ascending lane ids.
  static simd iota(T start = T{0}) {
    simd r;
    for (int i = 0; i < W; ++i) r.set(i, start + static_cast<T>(i));
    return r;
  }

  static simd load(const T* p) {
    simd r;
    std::memcpy(&r.v_, p, sizeof(storage_type));
    return r;
  }

  void store(T* p) const { std::memcpy(p, &v_, sizeof(storage_type)); }

  /// std::simd-style spellings.
  void copy_from(const T* p) { *this = load(p); }
  void copy_to(T* p) const { store(p); }

  template <class I>
  static simd gather(const T* base, const simd<I, W>& idx) {
    simd r;
    for (int i = 0; i < W; ++i)
      r.set(i, base[static_cast<std::size_t>(idx[i])]);
    return r;
  }

  template <class I>
  void scatter(T* base, const simd<I, W>& idx) const {
    for (int i = 0; i < W; ++i)
      base[static_cast<std::size_t>(idx[i])] = (*this)[i];
  }

  [[nodiscard]] T operator[](int lane) const {
    assert(lane >= 0 && lane < W);
    if constexpr (W == 1)
      return v_;
    else
      return v_[lane];
  }

  void set(int lane, T val) {
    assert(lane >= 0 && lane < W);
    if constexpr (W == 1)
      v_ = val;
    else
      v_[lane] = val;
  }

  [[nodiscard]] storage_type raw() const noexcept { return v_; }

  // Arithmetic (elementwise; GCC lowers vector-extension ops natively).
  friend simd operator+(simd a, simd b) { return simd(a.v_ + b.v_); }
  friend simd operator-(simd a, simd b) { return simd(a.v_ - b.v_); }
  friend simd operator*(simd a, simd b) { return simd(a.v_ * b.v_); }
  friend simd operator/(simd a, simd b) { return simd(a.v_ / b.v_); }
  simd operator-() const { return simd(-v_); }
  simd& operator+=(simd o) {
    v_ += o.v_;
    return *this;
  }
  simd& operator-=(simd o) {
    v_ -= o.v_;
    return *this;
  }
  simd& operator*=(simd o) {
    v_ *= o.v_;
    return *this;
  }
  simd& operator/=(simd o) {
    v_ /= o.v_;
    return *this;
  }

  // Comparisons -> masks.
  friend mask_type operator<(simd a, simd b) { return cmp(a.v_ < b.v_); }
  friend mask_type operator<=(simd a, simd b) { return cmp(a.v_ <= b.v_); }
  friend mask_type operator>(simd a, simd b) { return cmp(a.v_ > b.v_); }
  friend mask_type operator>=(simd a, simd b) { return cmp(a.v_ >= b.v_); }
  friend mask_type operator==(simd a, simd b) { return cmp(a.v_ == b.v_); }
  friend mask_type operator!=(simd a, simd b) { return cmp(a.v_ != b.v_); }

  [[nodiscard]] T reduce_sum() const {
    T acc{};
    for (int i = 0; i < W; ++i) acc += (*this)[i];
    return acc;
  }
  [[nodiscard]] T reduce_min() const {
    T acc = (*this)[0];
    for (int i = 1; i < W; ++i) acc = (*this)[i] < acc ? (*this)[i] : acc;
    return acc;
  }
  [[nodiscard]] T reduce_max() const {
    T acc = (*this)[0];
    for (int i = 1; i < W; ++i) acc = (*this)[i] > acc ? (*this)[i] : acc;
    return acc;
  }

 private:
  static mask_type cmp(typename simd_mask<T, W>::storage_type raw) {
    return mask_type(raw);
  }
  template <class, int>
  friend class simd;

  storage_type v_;
};

template <class T, int W = native_width<T>()>
class simd_mask {
 public:
  using element_type = mask_element_t<T>;
  using storage_type = typename vec_storage<element_type, W>::type;
  static constexpr int size() noexcept { return W; }

  simd_mask() : m_{} {}
  explicit simd_mask(bool broadcast) {
    const element_type fill = broadcast ? element_type(-1) : element_type(0);
    if constexpr (W == 1) {
      m_ = fill;
    } else {
      for (int i = 0; i < W; ++i) m_[i] = fill;
    }
  }
  explicit simd_mask(storage_type raw) : m_(raw) {}

  [[nodiscard]] bool operator[](int lane) const {
    if constexpr (W == 1)
      return m_ != 0;
    else
      return m_[lane] != 0;
  }

  void set(int lane, bool val) {
    const element_type fill = val ? element_type(-1) : element_type(0);
    if constexpr (W == 1)
      m_ = fill;
    else
      m_[lane] = fill;
  }

  [[nodiscard]] bool any() const {
    for (int i = 0; i < W; ++i)
      if ((*this)[i]) return true;
    return false;
  }
  [[nodiscard]] bool all() const {
    for (int i = 0; i < W; ++i)
      if (!(*this)[i]) return false;
    return true;
  }
  [[nodiscard]] bool none() const { return !any(); }
  [[nodiscard]] int count() const {
    int c = 0;
    for (int i = 0; i < W; ++i) c += (*this)[i] ? 1 : 0;
    return c;
  }

  friend simd_mask operator&&(simd_mask a, simd_mask b) {
    return simd_mask(a.m_ & b.m_);
  }
  friend simd_mask operator||(simd_mask a, simd_mask b) {
    return simd_mask(a.m_ | b.m_);
  }
  simd_mask operator!() const { return simd_mask(~m_); }

  [[nodiscard]] storage_type raw() const noexcept { return m_; }

 private:
  storage_type m_;
};

/// Blend: lanes from `a` where mask is set, else `b` (std::simd_select).
template <class T, int W>
simd<T, W> select(const simd_mask<T, W>& m, const simd<T, W>& a,
                  const simd<T, W>& b) {
  if constexpr (W == 1) {
    return m[0] ? a : b;
  } else {
    // GCC vector ternary performs an elementwise blend.
    return simd<T, W>(m.raw() ? a.raw() : b.raw());
  }
}

/// where(mask, v) += / = ... masked-assignment helper (std::simd where()).
template <class T, int W>
class where_expression {
 public:
  where_expression(const simd_mask<T, W>& m, simd<T, W>& v) : m_(m), v_(v) {}
  void operator=(const simd<T, W>& o) { v_ = select(m_, o, v_); }
  void operator+=(const simd<T, W>& o) { v_ = select(m_, v_ + o, v_); }
  void operator-=(const simd<T, W>& o) { v_ = select(m_, v_ - o, v_); }
  void operator*=(const simd<T, W>& o) { v_ = select(m_, v_ * o, v_); }

 private:
  simd_mask<T, W> m_;
  simd<T, W>& v_;
};

template <class T, int W>
where_expression<T, W> where(const simd_mask<T, W>& m, simd<T, W>& v) {
  return where_expression<T, W>(m, v);
}

template <class T, int W>
simd<T, W> min(const simd<T, W>& a, const simd<T, W>& b) {
  return select(a < b, a, b);
}

template <class T, int W>
simd<T, W> max(const simd<T, W>& a, const simd<T, W>& b) {
  return select(a > b, a, b);
}

/// Fused multiply-add a*b + c. GCC contracts the vector expression into FMA
/// under -ffp-contract=fast, matching what the ad hoc library spells as an
/// intrinsic.
template <class T, int W>
simd<T, W> fma(const simd<T, W>& a, const simd<T, W>& b,
               const simd<T, W>& c) {
  return a * b + c;
}

}  // namespace vpic::simd
