// simd/math.hpp
//
// Vectorized math for the manual-vectorization strategy. The paper's
// PLANCKIAN result (Fig. 3) and particle-push result (Fig. 4) hinge on math
// functions: libm calls break compiler auto-vectorization, so the manual
// strategy supplies its own vector exp/sqrt/rsqrt built from elementwise
// vector ops. exp uses range reduction (x = n*ln2 + r) plus a Horner
// polynomial, with the 2^n scaling done by exponent-bit arithmetic — the
// standard Cephes-style construction, expressed on portable vector types.
//
// Accuracy: |rel err| < 4 ulp for float, < 2e-15 for double, on the clamped
// domain (float: [-87, 88], double: [-707, 708]); inputs outside the domain
// saturate to 0 / exp(max). This matches what vendor SIMD math libraries
// provide and is ample for the PIC kernels.
#pragma once

#include <cmath>
#include <cstdint>

#include "simd/vec.hpp"

namespace vpic::simd {

namespace detail {

// Bit-cast between same-width vector types via memcpy (constexpr-safe).
template <class To, class From>
inline To vec_bitcast(const From& from) {
  static_assert(sizeof(To) == sizeof(From));
  To to;
  std::memcpy(&to, &from, sizeof(To));
  return to;
}

}  // namespace detail

/// Elementwise sqrt. Spelled as a per-lane loop over the vector register;
/// GCC emits vsqrtps/vsqrtpd for this pattern at -O2 (sqrt is exactly
/// rounded so no fast-math is needed).
template <class T, int W>
simd<T, W> sqrt(const simd<T, W>& a) {
  simd<T, W> r;
  for (int i = 0; i < W; ++i) r.set(i, std::sqrt(a[i]));
  return r;
}

template <class T, int W>
simd<T, W> abs(const simd<T, W>& a) {
  return select(a < simd<T, W>(T{0}), -a, a);
}

/// 1/sqrt(x) — one divide + sqrt; kernels that care use it via fma chains.
template <class T, int W>
simd<T, W> rsqrt(const simd<T, W>& a) {
  return simd<T, W>(T{1}) / sqrt(a);
}

// ----------------------------------------------------------------------
// exp
// ----------------------------------------------------------------------

template <int W>
simd<double, W> exp(const simd<double, W>& x_in) {
  using V = simd<double, W>;
  if constexpr (W == 1) {
    return V(std::exp(x_in[0]));
  } else {
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kLn2Hi = 6.93145751953125e-1;
    constexpr double kLn2Lo = 1.42860682030941723212e-6;

    // Clamp to the representable domain; beyond it the result saturates.
    V x = min(max(x_in, V(-707.0)), V(708.0));

    // n = round(x / ln2)
    V nf;
    {
      V t = x * V(kLog2e) + V(0.5);
      for (int i = 0; i < W; ++i) nf.set(i, std::floor(t[i]));
    }
    // r = x - n*ln2 (two-part for accuracy), |r| <= ln2/2
    V r = x - nf * V(kLn2Hi);
    r = r - nf * V(kLn2Lo);

    // e^r, |r| <= 0.347: Horner Taylor series, degree 12
    // (truncation error ~ r^13/13! < 2e-16 on the reduced range).
    V p(2.08767569878681e-9);             // 1/12!
    p = p * r + V(2.50521083854417e-8);   // 1/11!
    p = p * r + V(2.75573192239859e-7);   // 1/10!
    p = p * r + V(2.75573192239859e-6);   // 1/9!
    p = p * r + V(2.48015873015873e-5);   // 1/8!
    p = p * r + V(1.98412698412698e-4);   // 1/7!
    p = p * r + V(1.38888888888889e-3);   // 1/6!
    p = p * r + V(8.33333333333333e-3);   // 1/5!
    p = p * r + V(4.16666666666667e-2);   // 1/4!
    p = p * r + V(1.66666666666667e-1);   // 1/3!
    p = p * r + V(0.5);                   // 1/2!
    p = p * r + V(1.0);
    p = p * r + V(1.0);

    // 2^n via exponent bits.
    using IV = typename vec_storage<std::int64_t, W>::type;
    IV n64;
    {
      auto nraw = nf.raw();
      n64 = __builtin_convertvector(nraw, IV);
    }
    IV bits = (n64 + 1023) << 52;
    auto scale = detail::vec_bitcast<typename V::storage_type>(bits);
    return V(p.raw() * scale);
  }
}

template <int W>
simd<float, W> exp(const simd<float, W>& x_in) {
  using V = simd<float, W>;
  if constexpr (W == 1) {
    return V(std::exp(x_in[0]));
  } else {
    constexpr float kLog2e = 1.442695040f;
    constexpr float kLn2Hi = 0.693359375f;
    constexpr float kLn2Lo = -2.12194440e-4f;

    V x = min(max(x_in, V(-87.0f)), V(88.0f));

    V nf;
    {
      V t = x * V(kLog2e) + V(0.5f);
      for (int i = 0; i < W; ++i) nf.set(i, std::floor(t[i]));
    }
    V r = x - nf * V(kLn2Hi);
    r = r - nf * V(kLn2Lo);

    // e^r Taylor, degree 8 (float precision).
    V p(2.4801587e-5f);  // 1/8!
    p = p * r + V(1.9841270e-4f);  // 1/7!
    p = p * r + V(1.3888889e-3f);  // 1/6!
    p = p * r + V(8.3333333e-3f);  // 1/5!
    p = p * r + V(4.1666667e-2f);  // 1/4!
    p = p * r + V(1.6666667e-1f);  // 1/3!
    p = p * r + V(0.5f);
    p = p * r + V(1.0f);
    p = p * r + V(1.0f);

    using IV = typename vec_storage<std::int32_t, W>::type;
    IV n32 = __builtin_convertvector(nf.raw(), IV);
    IV bits = (n32 + 127) << 23;
    auto scale = detail::vec_bitcast<typename V::storage_type>(bits);
    return V(p.raw() * scale);
  }
}

// ----------------------------------------------------------------------
// log (natural) — double precision, x > 0 and normal (the PIC use cases:
// Maxwellian inversion, entropy diagnostics). Standard construction:
// decompose x = m * 2^e with m in [sqrt(1/2), sqrt(2)), then
// ln m = 2 * artanh((m-1)/(m+1)) via its odd polynomial.
// ----------------------------------------------------------------------

template <int W>
simd<double, W> log(const simd<double, W>& x_in) {
  using V = simd<double, W>;
  if constexpr (W == 1) {
    return V(std::log(x_in[0]));
  } else {
    using IV = typename vec_storage<std::int64_t, W>::type;
    constexpr double kLn2Hi = 6.93147180369123816490e-1;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    constexpr double kSqrt2 = 1.41421356237309504880;

    auto bits = detail::vec_bitcast<IV>(x_in.raw());
    IV e64 = ((bits >> 52) & 0x7ff) - 1023;
    // Rebuild the mantissa with a zero exponent: m in [1, 2).
    IV mbits = (bits & 0x000fffffffffffffll) | 0x3ff0000000000000ll;
    V m(detail::vec_bitcast<typename V::storage_type>(mbits));

    // Fold m into [sqrt(1/2), sqrt(2)) so t stays small.
    const auto fold = m > V(kSqrt2);
    where(fold, m) *= V(0.5);
    V e;
    {
      // e as double, +1 where folded.
      typename V::storage_type ef = __builtin_convertvector(
          e64, typename V::storage_type);
      e = V(ef);
      where(fold, e) += V(1.0);
    }

    const V t = (m - V(1.0)) / (m + V(1.0));
    const V t2 = t * t;
    // artanh series: t + t^3/3 + ... + t^21/21 (|t| <= 0.1716).
    V p(1.0 / 21.0);
    p = p * t2 + V(1.0 / 19.0);
    p = p * t2 + V(1.0 / 17.0);
    p = p * t2 + V(1.0 / 15.0);
    p = p * t2 + V(1.0 / 13.0);
    p = p * t2 + V(1.0 / 11.0);
    p = p * t2 + V(1.0 / 9.0);
    p = p * t2 + V(1.0 / 7.0);
    p = p * t2 + V(1.0 / 5.0);
    p = p * t2 + V(1.0 / 3.0);
    p = p * t2 + V(1.0);
    const V ln_m = V(2.0) * t * p;

    return e * V(kLn2Hi) + (ln_m + e * V(kLn2Lo));
  }
}

/// expm1-style guard: exp(x) - 1 accurate for small |x| (used by the
/// Planck-law kernels where exp(x) - 1 cancels catastrophically).
template <int W>
simd<double, W> expm1(const simd<double, W>& x) {
  using V = simd<double, W>;
  // Small-|x| Taylor (degree 10: error < 3e-17 for |x| <= 0.1); larger |x|
  // via exp, where the subtraction no longer cancels.
  V p(1.0 / 3628800.0);            // 1/10!
  p = p * x + V(1.0 / 362880.0);   // 1/9!
  p = p * x + V(1.0 / 40320.0);
  p = p * x + V(1.0 / 5040.0);
  p = p * x + V(1.0 / 720.0);
  p = p * x + V(1.0 / 120.0);
  p = p * x + V(1.0 / 24.0);
  p = p * x + V(1.0 / 6.0);
  p = p * x + V(0.5);
  p = p * x + V(1.0);
  const V small = x * p;
  const V big = exp(x) - V(1.0);
  return select(abs(x) < V(0.1), small, big);
}

}  // namespace vpic::simd
