// ckpt/serialize.hpp
//
// pk-level View serialization: encode_view() snapshots any pk::View into a
// stable in-memory section (dtype size, extents, layout tag, CRC32 +
// payload bytes) via a host mirror; decode_view() rebuilds a View from a
// section, validating shape metadata before touching the bytes. These are
// the primitives the checkpoint writer/reader compose — and, because the
// encode is a deep copy into freshly owned buffers, encoding *is* the
// snapshot step of the async checkpoint path (docs/CHECKPOINT.md).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/crc32.hpp"
#include "ckpt/format.hpp"
#include "pk/pk.hpp"

namespace vpic::ckpt {

using pk::index_t;

namespace detail {

template <class Layout>
constexpr std::uint8_t layout_tag() noexcept {
  if constexpr (std::is_same_v<Layout, pk::LayoutLeft>)
    return kLayoutLeft;
  else
    return kLayoutRight;
}

}  // namespace detail

/// One named section: shape metadata plus an owned payload copy. The
/// writer turns these into SectionRecords + payload bytes; the reader
/// hands them back after CRC validation.
struct EncodedSection {
  std::string name;
  std::uint32_t elem_size = 1;
  std::uint32_t rank = 0;  // 0: raw bytes / pod
  std::array<std::int64_t, 4> extents{};
  std::uint8_t layout = kLayoutRaw;
  std::vector<std::byte> payload;

  [[nodiscard]] std::uint32_t crc() const {
    return crc32(payload.data(), payload.size());
  }
};

/// Snapshot a view into an EncodedSection. For rank-1 views `count`
/// restricts the encoding to the first `count` elements (a particle
/// array's live prefix); the default -1 encodes the full extent. The copy
/// goes through a host mirror for non-host memory spaces, mirroring how a
/// Kokkos build would stage device Views for I/O.
template <class T, int R, class L, class M>
EncodedSection encode_view(std::string_view name,
                           const pk::View<T, R, L, M>& v,
                           index_t count = -1) {
  if (name.size() > kSectionNameMax)
    throw std::invalid_argument("ckpt::encode_view: section name too long: " +
                                std::string(name));
  EncodedSection s;
  s.name = std::string(name);
  s.elem_size = sizeof(T);
  s.rank = R;
  s.layout = detail::layout_tag<L>();
  for (int d = 0; d < R; ++d) s.extents[static_cast<std::size_t>(d)] = v.extent(d);

  index_t n = v.size();
  if constexpr (R == 1) {
    if (count >= 0) {
      assert(count <= v.extent(0));
      n = count;
      s.extents[0] = count;
    }
  } else {
    assert(count < 0 && "prefix encoding is rank-1 only");
  }

  s.payload.resize(static_cast<std::size_t>(n) * sizeof(T));
  if constexpr (std::is_same_v<M, pk::HostSpace>) {
    std::memcpy(s.payload.data(), v.data(), s.payload.size());
  } else {
    // Stage through a host mirror (deep copy); prefix encodings then take
    // the mirror's leading bytes — the mirror is contiguous by layout.
    auto host = pk::create_mirror_copy(v);
    std::memcpy(s.payload.data(), host.data(), s.payload.size());
  }
  return s;
}

/// Validate a section's metadata against the target view type; throws
/// RestoreError{ShapeMismatch} naming the first disagreement.
template <class T, int R, class L>
void check_view_shape(const EncodedSection& s) {
  if (s.elem_size != sizeof(T))
    throw RestoreError(RestoreErrorKind::ShapeMismatch,
                       "section '" + s.name + "' element size " +
                           std::to_string(s.elem_size) + " != expected " +
                           std::to_string(sizeof(T)));
  if (s.rank != static_cast<std::uint32_t>(R))
    throw RestoreError(RestoreErrorKind::ShapeMismatch,
                       "section '" + s.name + "' rank " +
                           std::to_string(s.rank) + " != expected " +
                           std::to_string(R));
  if (s.layout != detail::layout_tag<L>())
    throw RestoreError(RestoreErrorKind::ShapeMismatch,
                       "section '" + s.name + "' layout tag mismatch");
  std::int64_t n = 1;
  for (int d = 0; d < R; ++d) n *= s.extents[static_cast<std::size_t>(d)];
  if (s.payload.size() != static_cast<std::size_t>(n) * sizeof(T))
    throw RestoreError(RestoreErrorKind::ShapeMismatch,
                       "section '" + s.name + "' payload size " +
                           std::to_string(s.payload.size()) +
                           " disagrees with extents");
}

/// Rebuild a freshly allocated view from a section.
template <class T, int R, class L = pk::LayoutRight>
pk::View<T, R, L> decode_view(const EncodedSection& s,
                              const std::string& label = "") {
  check_view_shape<T, R, L>(s);
  const std::string lab = label.empty() ? s.name : label;
  const auto& e = s.extents;
  pk::View<T, R, L> v = [&] {
    if constexpr (R == 1)
      return pk::View<T, R, L>(lab, e[0]);
    else if constexpr (R == 2)
      return pk::View<T, R, L>(lab, e[0], e[1]);
    else if constexpr (R == 3)
      return pk::View<T, R, L>(lab, e[0], e[1], e[2]);
    else
      return pk::View<T, R, L>(lab, e[0], e[1], e[2], e[3]);
  }();
  std::memcpy(v.data(), s.payload.data(), s.payload.size());
  return v;
}

/// Decode into an existing allocation. Extents must match exactly, except
/// that a rank-1 destination may be *larger* than the encoded prefix (a
/// particle array restored into its capacity buffer).
template <class T, int R, class L, class M>
void decode_view_into(const EncodedSection& s,
                      const pk::View<T, R, L, M>& dst) {
  check_view_shape<T, R, L>(s);
  for (int d = 0; d < R; ++d) {
    const std::int64_t have = dst.extent(d);
    const std::int64_t want = s.extents[static_cast<std::size_t>(d)];
    const bool ok = (R == 1 && d == 0) ? have >= want : have == want;
    if (!ok)
      throw RestoreError(RestoreErrorKind::ShapeMismatch,
                         "section '" + s.name + "' extent(" +
                             std::to_string(d) + ")=" + std::to_string(want) +
                             " does not fit destination extent " +
                             std::to_string(have));
  }
  // Host-only build: both memory spaces are host-accessible, so the
  // restore lands directly (a device build would stage via a mirror).
  std::memcpy(dst.data(), s.payload.data(), s.payload.size());
}

}  // namespace vpic::ckpt
