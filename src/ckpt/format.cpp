#include "ckpt/format.hpp"

namespace vpic::ckpt {

const char* to_string(RestoreErrorKind k) noexcept {
  switch (k) {
    case RestoreErrorKind::IoError:
      return "io-error";
    case RestoreErrorKind::BadMagic:
      return "bad-magic";
    case RestoreErrorKind::BadVersion:
      return "bad-version";
    case RestoreErrorKind::HeaderCorrupt:
      return "header-corrupt";
    case RestoreErrorKind::TableCorrupt:
      return "table-corrupt";
    case RestoreErrorKind::Truncated:
      return "truncated";
    case RestoreErrorKind::SectionCorrupt:
      return "section-corrupt";
    case RestoreErrorKind::MissingSection:
      return "missing-section";
    case RestoreErrorKind::ShapeMismatch:
      return "shape-mismatch";
    case RestoreErrorKind::FingerprintMismatch:
      return "fingerprint-mismatch";
    case RestoreErrorKind::ManifestMismatch:
      return "manifest-mismatch";
  }
  return "?";
}

}  // namespace vpic::ckpt
