// ckpt/ckpt.hpp — umbrella header for the checkpoint/restart subsystem
// (docs/CHECKPOINT.md):
//
//   * crc32.hpp      — CRC-32 integrity primitive
//   * format.hpp     — on-disk layout, typed RestoreError, Fingerprint
//   * serialize.hpp  — ckpt::encode_view / ckpt::decode_view over pk::View
//   * file.hpp       — FileWriter (rename-commit) / FileReader (validated)
//   * ring.hpp       — generation ring with keep_last pruning + fallback
//   * fault.hpp      — FaultInjector for the corruption-mode tests
//
// The Simulation/DistributedSimulation integration (full-state
// checkpoint(), restore(), async snapshots, the StepGraph "ckpt" phase)
// lives in core/checkpoint.cpp on top of these primitives.
#pragma once

#include "ckpt/crc32.hpp"
#include "ckpt/fault.hpp"
#include "ckpt/file.hpp"
#include "ckpt/format.hpp"
#include "ckpt/ring.hpp"
#include "ckpt/serialize.hpp"
