// ckpt/crc32.hpp
//
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) used for every
// integrity check in the checkpoint format: file header, section table and
// each section payload carry their own CRC so restore can tell *where* a
// file was damaged (docs/CHECKPOINT.md failure matrix) instead of feeding
// corrupt bytes back into the simulation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vpic::ckpt {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// CRC over discontiguous buffers. The default seed is the standard
/// initial value.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vpic::ckpt
