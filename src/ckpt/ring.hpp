// ckpt/ring.hpp
//
// Generation ring: periodic checkpoints write `<base>.g<N>` with a
// monotonically increasing generation number, keeping only the newest
// `keep_last` files. Combined with the writer's rename-commit this gives
// the classic fault-tolerance ladder (docs/CHECKPOINT.md):
//
//   * a crash mid-write leaves the previous generations untouched,
//   * a corrupted newest generation (detected by the reader's CRCs as a
//     typed RestoreError) falls back to the one before it,
//   * restore_latest() walks generations newest-first until one restores.
//
// Ownership is per base path, not per directory: every query and mutation
// matches "<basename>.g<digits>" exactly, so many rings — e.g. the farm's
// per-job rings (docs/FARM.md) — can share one directory and a prune or
// purge of one never touches a sibling's generations, even when one base
// name is a prefix of another ("a" vs "ab").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vpic::ckpt {

class GenerationRing {
 public:
  /// `base` may include directories ("out/ckpt"); generation files are
  /// siblings named "<base>.g<N>". keep_last < 1 is clamped to 1.
  explicit GenerationRing(std::string base, int keep_last = 3);

  [[nodiscard]] const std::string& base() const noexcept { return base_; }
  [[nodiscard]] int keep_last() const noexcept { return keep_last_; }

  [[nodiscard]] std::string path_for(std::uint64_t gen) const;

  /// Committed generation numbers found on disk, ascending. Stale .tmp
  /// files (a crash mid-write) are ignored.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  /// Next generation number to write (max existing + 1, or 0).
  [[nodiscard]] std::uint64_t next_generation() const;

  /// Delete committed generations beyond the newest keep_last. Only
  /// committed files are touched — an in-flight "<base>.g<N>.tmp" is
  /// invisible here, so pruning is safe while an async writer is still
  /// committing. Best-effort: removal errors are ignored.
  void prune() const;

  /// Delete stale "<base>.g<N>.tmp" leftovers — uncommitted wrecks from a
  /// crash mid-write. Callers must NOT run this while an asynchronous
  /// commit may be in flight: it would unlink the tmp file out from under
  /// the writer and the rename-commit would fail, losing the checkpoint
  /// (Simulation::checkpoint_to_ring defers it until the queue is idle).
  void remove_stale_tmp() const;

  /// Delete every committed generation AND stale tmp of this ring — full
  /// retirement of a job's checkpoint state (a farm job cancelled with
  /// drop_checkpoints, docs/FARM.md). Same in-flight-writer caveat as
  /// remove_stale_tmp(). Only files of THIS base are touched; sibling
  /// rings in the directory are untouched. Best-effort; returns the
  /// number of files removed.
  std::size_t purge() const;

 private:
  std::string base_;
  int keep_last_;
};

}  // namespace vpic::ckpt
