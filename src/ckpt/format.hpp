// ckpt/format.hpp
//
// On-disk checkpoint format (docs/CHECKPOINT.md):
//
//   +--------------------+  offset 0
//   | FileHeader (56 B)  |  magic, version, fingerprint, step,
//   |                    |  table offset/size, table CRC, header CRC
//   +--------------------+  header.table_offset
//   | SectionRecord[n]   |  96 B each: name, elem size, rank, extents,
//   |                    |  layout tag, payload offset/bytes/CRC
//   +--------------------+
//   | payloads           |  8-byte aligned, in table order
//   +--------------------+  header.total_bytes
//
// Every layer carries its own CRC-32 so restore classifies damage into a
// typed RestoreError instead of silently resuming from corrupt state:
// header CRC covers the header, table CRC the whole section table, and
// each payload its own bytes. `total_bytes` up front makes truncation
// (the most common failure: a job killed mid-write that bypassed the
// rename-commit) detectable before any payload is parsed.
//
// Numbers are stored in host byte order — checkpoints restart the run on
// the machine (class) that wrote them, as with VPIC's own dumps.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vpic::ckpt {

/// "VPICCKP1" as a big-endian u64; any bit flip in it fails restore fast.
inline constexpr std::uint64_t kMagic = 0x56504943434B5031ull;
inline constexpr std::uint32_t kFormatVersion = 1;
/// Section names are fixed-width in the table (NUL-padded).
inline constexpr std::size_t kSectionNameMax = 31;
/// Payloads are aligned so mapped or vector-loaded restores can cast.
inline constexpr std::uint64_t kPayloadAlign = 8;

struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t section_count = 0;
  std::uint64_t fingerprint = 0;  // deck/config identity (writer-defined)
  std::int64_t step = 0;          // step count the state was captured at
  std::uint64_t table_offset = 0;
  std::uint64_t total_bytes = 0;  // full committed file size
  std::uint32_t table_crc = 0;    // CRC of the section-table bytes
  std::uint32_t header_crc = 0;   // CRC of this struct up to this field
};
static_assert(sizeof(FileHeader) == 56);
/// Bytes of FileHeader covered by header_crc (everything before it).
inline constexpr std::size_t kHeaderCrcBytes =
    sizeof(FileHeader) - sizeof(std::uint32_t);

/// Layout tags for encoded views ('R'/'L'); raw byte/pod sections use 0.
inline constexpr std::uint8_t kLayoutRaw = 0;
inline constexpr std::uint8_t kLayoutRight = 'R';
inline constexpr std::uint8_t kLayoutLeft = 'L';

struct SectionRecord {
  char name[kSectionNameMax + 1] = {};  // NUL-terminated/padded
  std::uint32_t elem_size = 1;
  std::uint32_t rank = 0;  // 0 for raw bytes/pod sections
  std::int64_t extents[4] = {};
  std::uint8_t layout = kLayoutRaw;
  std::uint8_t reserved[3] = {};
  std::uint32_t payload_crc = 0;
  std::uint64_t payload_offset = 0;
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(SectionRecord) == 96);

/// Where a restore failed — each injected corruption mode maps to exactly
/// one kind (tests/test_ckpt.cpp pins the mapping).
enum class RestoreErrorKind : std::uint8_t {
  IoError,              // file missing / unreadable / unwritable
  BadMagic,             // not a checkpoint file (or magic damaged)
  BadVersion,           // valid header from an unsupported format version
  HeaderCorrupt,        // header CRC mismatch
  TableCorrupt,         // section table CRC mismatch or out of bounds
  Truncated,            // file shorter than header.total_bytes claims
  SectionCorrupt,       // payload CRC mismatch (torn write, bit flip)
  MissingSection,       // expected section absent
  ShapeMismatch,        // section dtype/rank/extents disagree with target
  FingerprintMismatch,  // checkpoint from a different deck/config
  ManifestMismatch,     // distributed manifest disagrees (ranks, step)
};

const char* to_string(RestoreErrorKind k) noexcept;

/// Typed restore failure. `kind()` drives the generation-ring fallback:
/// any RestoreError on generation g means "try g-1", while non-ckpt
/// exceptions propagate.
class RestoreError : public std::runtime_error {
 public:
  RestoreError(RestoreErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(to_string(kind)) + ": " + what),
        kind_(kind) {}

  [[nodiscard]] RestoreErrorKind kind() const noexcept { return kind_; }

 private:
  RestoreErrorKind kind_;
};

/// FNV-1a 64-bit accumulator for the deck/config fingerprint. Feed the
/// physics-relevant knobs (grid, dt, strategy, seed, species identities);
/// execution details (scheduler, instance counts) stay out so a restore
/// may legally change them.
class Fingerprint {
 public:
  void add_bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ull;
    }
  }
  template <class Pod>
  void add(const Pod& v) noexcept {
    static_assert(std::is_trivially_copyable_v<Pod>);
    add_bytes(&v, sizeof(Pod));
  }
  void add_string(const std::string& s) noexcept {
    const std::uint64_t n = s.size();
    add(n);
    add_bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

}  // namespace vpic::ckpt
