#include "ckpt/file.hpp"

#include <cstdio>
#include <filesystem>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "prof/prof.hpp"

namespace vpic::ckpt {

namespace fs = std::filesystem;

void FileWriter::add(EncodedSection section) {
  if (section.name.empty() || section.name.size() > kSectionNameMax)
    throw std::invalid_argument("ckpt: bad section name '" + section.name +
                                "'");
  for (const auto& s : sections_)
    if (s.name == section.name)
      throw std::invalid_argument("ckpt: duplicate section '" + section.name +
                                  "'");
  sections_.push_back(std::move(section));
}

void FileWriter::add_bytes(std::string_view name, const void* data,
                           std::size_t n) {
  EncodedSection s;
  s.name = std::string(name);
  s.elem_size = 1;
  s.rank = 0;
  s.extents[0] = static_cast<std::int64_t>(n);
  s.layout = kLayoutRaw;
  s.payload.resize(n);
  if (n) std::memcpy(s.payload.data(), data, n);
  add(std::move(s));
}

std::uint64_t FileWriter::commit(const std::string& path,
                                 std::uint64_t fingerprint,
                                 std::int64_t step) const {
  prof::ScopedRegion r("ckpt_commit");

  // Lay the file out: header, table, then 8-byte-aligned payloads.
  FileHeader h;
  h.fingerprint = fingerprint;
  h.step = step;
  h.section_count = static_cast<std::uint32_t>(sections_.size());
  h.table_offset = sizeof(FileHeader);

  std::vector<SectionRecord> table(sections_.size());
  std::uint64_t off =
      h.table_offset + table.size() * sizeof(SectionRecord);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const EncodedSection& s = sections_[i];
    SectionRecord& rec = table[i];
    std::memcpy(rec.name, s.name.data(), s.name.size());
    rec.elem_size = s.elem_size;
    rec.rank = s.rank;
    for (std::size_t d = 0; d < 4; ++d) rec.extents[d] = s.extents[d];
    rec.layout = s.layout;
    off = (off + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
    rec.payload_offset = off;
    rec.payload_bytes = s.payload.size();
    rec.payload_crc = s.crc();
    off += rec.payload_bytes;
  }
  h.total_bytes = off;
  h.table_crc =
      crc32(table.data(), table.size() * sizeof(SectionRecord));
  h.header_crc = crc32(&h, kHeaderCrcBytes);

  // Assemble in memory, then write-to-temp + rename. The single fwrite
  // keeps the temp file either absent or complete-so-far; the rename is
  // the commit point (POSIX rename atomicity).
  std::vector<std::byte> blob(static_cast<std::size_t>(h.total_bytes),
                              std::byte{0});
  std::memcpy(blob.data(), &h, sizeof(h));
  std::memcpy(blob.data() + h.table_offset, table.data(),
              table.size() * sizeof(SectionRecord));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].payload.empty()) continue;
    std::memcpy(blob.data() + table[i].payload_offset,
                sections_[i].payload.data(), sections_[i].payload.size());
  }

  const std::string tmp = path + ".tmp";
  {
    prof::ScopedRegion w("ckpt_write_file");
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
      throw RestoreError(RestoreErrorKind::IoError,
                         "cannot open '" + tmp + "' for writing");
    const std::size_t wrote = std::fwrite(blob.data(), 1, blob.size(), f);
    bool flushed = std::fflush(f) == 0;
#ifndef _WIN32
    // fflush only reaches the page cache; a power loss (as opposed to a
    // process kill) could leave the renamed "committed" file empty or
    // torn, and all recent generations can share one unflushed window.
    if (flushed) flushed = ::fsync(::fileno(f)) == 0;
#endif
    std::fclose(f);
    if (wrote != blob.size() || !flushed) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw RestoreError(RestoreErrorKind::IoError,
                         "short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    throw RestoreError(RestoreErrorKind::IoError,
                       "rename '" + tmp + "' -> '" + path +
                           "' failed: " + ec.message());
  }
#ifndef _WIN32
  // The rename itself lives in the directory: fsync the parent so the new
  // name is durable before the generation counts as committed.
  const fs::path parent_path = fs::path(path).parent_path();
  const std::string parent = parent_path.empty() ? "." : parent_path.string();
  const int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    const bool dir_synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!dir_synced)
      throw RestoreError(RestoreErrorKind::IoError,
                         "fsync of directory '" + parent + "' failed");
  }
#endif
  return h.total_bytes;
}

FileReader::FileReader(const std::string& path) : path_(path) {
  prof::ScopedRegion r("ckpt_open");

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw RestoreError(RestoreErrorKind::IoError,
                       "cannot open '" + path + "'");
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  data_.resize(sz > 0 ? static_cast<std::size_t>(sz) : 0);
  const std::size_t got =
      data_.empty() ? 0 : std::fread(data_.data(), 1, data_.size(), f);
  std::fclose(f);
  if (got != data_.size())
    throw RestoreError(RestoreErrorKind::IoError,
                       "short read from '" + path + "'");

  if (data_.size() < sizeof(FileHeader))
    throw RestoreError(RestoreErrorKind::Truncated,
                       "'" + path + "' is smaller than a header (" +
                           std::to_string(data_.size()) + " bytes)");
  std::memcpy(&header_, data_.data(), sizeof(FileHeader));

  if (header_.magic != kMagic)
    throw RestoreError(RestoreErrorKind::BadMagic,
                       "'" + path + "' is not a vpic checkpoint");
  if (crc32(&header_, kHeaderCrcBytes) != header_.header_crc)
    throw RestoreError(RestoreErrorKind::HeaderCorrupt,
                       "header CRC mismatch in '" + path + "'");
  if (header_.version != kFormatVersion)
    throw RestoreError(RestoreErrorKind::BadVersion,
                       "'" + path + "' has format version " +
                           std::to_string(header_.version) + ", expected " +
                           std::to_string(kFormatVersion));
  if (header_.total_bytes > data_.size())
    throw RestoreError(RestoreErrorKind::Truncated,
                       "'" + path + "' holds " +
                           std::to_string(data_.size()) + " of " +
                           std::to_string(header_.total_bytes) +
                           " committed bytes");

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header_.section_count) *
      sizeof(SectionRecord);
  // Overflow-safe form: "offset + bytes > total" can wrap in uint64 for a
  // crafted file whose CRCs are self-consistent (CRCs are not integrity
  // protection against malicious input), passing the check and reading
  // out of bounds.
  if (table_bytes > header_.total_bytes ||
      header_.table_offset > header_.total_bytes - table_bytes)
    throw RestoreError(RestoreErrorKind::TableCorrupt,
                       "section table out of bounds in '" + path + "'");
  if (crc32(data_.data() + header_.table_offset, table_bytes) !=
      header_.table_crc)
    throw RestoreError(RestoreErrorKind::TableCorrupt,
                       "section table CRC mismatch in '" + path + "'");

  sections_.resize(header_.section_count);
  for (std::uint32_t i = 0; i < header_.section_count; ++i) {
    SectionRecord rec;
    std::memcpy(&rec,
                data_.data() + header_.table_offset +
                    static_cast<std::uint64_t>(i) * sizeof(SectionRecord),
                sizeof(SectionRecord));
    Slot& slot = sections_[i];
    // Defensive NUL-termination: name[] is NUL-padded on write.
    rec.name[kSectionNameMax] = '\0';
    slot.section.name = rec.name;
    slot.section.elem_size = rec.elem_size;
    slot.section.rank = rec.rank;
    for (std::size_t d = 0; d < 4; ++d)
      slot.section.extents[d] = rec.extents[d];
    slot.section.layout = rec.layout;
    slot.offset = rec.payload_offset;
    slot.bytes = rec.payload_bytes;
    slot.crc = rec.payload_crc;
    // Same overflow-safe form as the table bound above.
    if (slot.bytes > header_.total_bytes ||
        slot.offset > header_.total_bytes - slot.bytes)
      throw RestoreError(RestoreErrorKind::TableCorrupt,
                         "section '" + slot.section.name +
                             "' payload out of bounds in '" + path + "'");
    if (!index_.emplace(slot.section.name, i).second)
      throw RestoreError(RestoreErrorKind::TableCorrupt,
                         "duplicate section '" + slot.section.name +
                             "' in '" + path + "'");
  }
}

const EncodedSection& FileReader::section(std::string_view name) {
  auto it = index_.find(name);
  if (it == index_.end())
    throw RestoreError(RestoreErrorKind::MissingSection,
                       "no section '" + std::string(name) + "' in '" +
                           path_ + "'");
  Slot& slot = sections_[it->second];
  if (!slot.loaded) {
    if (crc32(data_.data() + slot.offset, slot.bytes) != slot.crc)
      throw RestoreError(RestoreErrorKind::SectionCorrupt,
                         "payload CRC mismatch in section '" +
                             slot.section.name + "' of '" + path_ + "'");
    slot.section.payload.assign(data_.begin() + static_cast<std::ptrdiff_t>(slot.offset),
                                data_.begin() + static_cast<std::ptrdiff_t>(slot.offset + slot.bytes));
    slot.loaded = true;
  }
  return slot.section;
}

std::vector<std::string> FileReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, idx] : index_) {
    (void)idx;
    names.push_back(name);
  }
  return names;
}

void FileReader::validate_all() {
  for (const auto& [name, idx] : index_) {
    (void)idx;
    (void)section(name);
  }
}


}  // namespace vpic::ckpt
