// ckpt/fault.hpp
//
// Fault injector for checkpoint files: reproduces the storage failure
// modes a restart must survive — truncation (job killed mid-copy), torn
// section writes (power loss after a partial flush), silent single-bit
// flips (media/DMA corruption), and stale-format headers (restore against
// a checkpoint from an incompatible build). Each injected fault must be
// *detected* by FileReader as the matching typed RestoreError
// (tests/test_ckpt.cpp pins fault -> kind), at which point the generation
// ring falls back to the previous valid file.
#pragma once

#include <cstdint>
#include <string>

namespace vpic::ckpt {

class FaultInjector {
 public:
  /// Drop the trailing `bytes` of the file (clamped to the file size).
  static void truncate_tail(const std::string& path, std::uint64_t bytes);

  /// Flip one bit at an absolute byte offset.
  static void flip_bit(const std::string& path, std::uint64_t byte_offset,
                       int bit = 0);

  /// Zero the trailing half of section `index`'s payload — a torn write
  /// whose tail never reached the disk (the table still describes the
  /// full payload, so only the payload CRC can notice).
  static void torn_section(const std::string& path, std::size_t index);

  /// Flip one bit in the middle of section `index`'s payload.
  static void flip_payload_bit(const std::string& path, std::size_t index);

  /// Rewrite the header's format version (and recompute the header CRC,
  /// so the file presents as a *valid* checkpoint of another era rather
  /// than as damage).
  static void set_version(const std::string& path, std::uint32_t version);

  /// Overwrite the magic — the file no longer claims to be a checkpoint.
  static void corrupt_magic(const std::string& path);
};

}  // namespace vpic::ckpt
