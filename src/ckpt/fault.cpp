#include "ckpt/fault.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "ckpt/crc32.hpp"
#include "ckpt/format.hpp"

namespace vpic::ckpt {

namespace {

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("fault: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> buf(sz > 0 ? static_cast<std::size_t>(sz) : 0);
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    throw std::runtime_error("fault: short read from " + path);
  }
  std::fclose(f);
  return buf;
}

void spit(const std::string& path, const std::vector<unsigned char>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("fault: cannot write " + path);
  if (!buf.empty() && std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    throw std::runtime_error("fault: short write to " + path);
  }
  std::fclose(f);
}

SectionRecord read_record(const std::vector<unsigned char>& buf,
                          std::size_t index) {
  FileHeader h;
  if (buf.size() < sizeof(FileHeader))
    throw std::runtime_error("fault: file smaller than a header");
  std::memcpy(&h, buf.data(), sizeof(FileHeader));
  if (index >= h.section_count)
    throw std::out_of_range("fault: section index out of range");
  SectionRecord rec;
  std::memcpy(&rec,
              buf.data() + h.table_offset + index * sizeof(SectionRecord),
              sizeof(SectionRecord));
  return rec;
}

}  // namespace

void FaultInjector::truncate_tail(const std::string& path,
                                  std::uint64_t bytes) {
  auto buf = slurp(path);
  const std::size_t keep =
      bytes >= buf.size() ? 0 : buf.size() - static_cast<std::size_t>(bytes);
  buf.resize(keep);
  spit(path, buf);
}

void FaultInjector::flip_bit(const std::string& path,
                             std::uint64_t byte_offset, int bit) {
  auto buf = slurp(path);
  if (byte_offset >= buf.size())
    throw std::out_of_range("fault: flip_bit offset beyond file");
  buf[static_cast<std::size_t>(byte_offset)] ^=
      static_cast<unsigned char>(1u << (bit & 7));
  spit(path, buf);
}

void FaultInjector::torn_section(const std::string& path, std::size_t index) {
  auto buf = slurp(path);
  const SectionRecord rec = read_record(buf, index);
  if (rec.payload_bytes < 2)
    throw std::runtime_error("fault: section too small to tear");
  const std::uint64_t half = rec.payload_bytes / 2;
  std::memset(buf.data() + rec.payload_offset + half, 0,
              static_cast<std::size_t>(rec.payload_bytes - half));
  spit(path, buf);
}

void FaultInjector::flip_payload_bit(const std::string& path,
                                     std::size_t index) {
  auto buf = slurp(path);
  const SectionRecord rec = read_record(buf, index);
  if (rec.payload_bytes == 0)
    throw std::runtime_error("fault: empty section payload");
  flip_bit(path, rec.payload_offset + rec.payload_bytes / 2, 3);
}

void FaultInjector::set_version(const std::string& path,
                                std::uint32_t version) {
  auto buf = slurp(path);
  if (buf.size() < sizeof(FileHeader))
    throw std::runtime_error("fault: file smaller than a header");
  FileHeader h;
  std::memcpy(&h, buf.data(), sizeof(FileHeader));
  h.version = version;
  h.header_crc = crc32(&h, kHeaderCrcBytes);
  std::memcpy(buf.data(), &h, sizeof(FileHeader));
  spit(path, buf);
}

void FaultInjector::corrupt_magic(const std::string& path) {
  auto buf = slurp(path);
  if (buf.size() < sizeof(std::uint64_t))
    throw std::runtime_error("fault: file smaller than the magic");
  const std::uint64_t junk = 0x4445414442454546ull;  // "DEADBEEF"-ish
  std::memcpy(buf.data(), &junk, sizeof(junk));
  spit(path, buf);
}

}  // namespace vpic::ckpt
