// ckpt/file.hpp
//
// Checkpoint file writer/reader over the format in format.hpp.
//
// Writer: accumulate named sections in memory (encode_view deep copies, so
// a populated Writer is a self-contained snapshot independent of the live
// simulation — the unit the async checkpoint path hands to its background
// instance), then commit() serializes header + table + payloads to
// `<path>.tmp` and atomically renames onto `path`. A crash mid-write
// leaves at worst a stale .tmp, never a half-written committed file.
//
// Reader: loads the whole file, validates header CRC, magic, version,
// total size and table CRC up front, and validates each payload's CRC on
// first access — every failure is a typed RestoreError (format.hpp), which
// is what the generation-ring fallback dispatches on.
//
// SectionSource is the abstract read surface both FileReader and the
// elastic chain reader (src/elastic, docs/ELASTIC.md) implement: restore
// code written against it consumes a plain single file and a resolved
// base+delta generation chain identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/serialize.hpp"

namespace vpic::ckpt {

class FileWriter {
 public:
  /// Add a section; throws std::invalid_argument on duplicate names.
  void add(EncodedSection section);

  template <class T, int R, class L, class M>
  void add_view(std::string_view name, const pk::View<T, R, L, M>& v,
                index_t count = -1) {
    add(encode_view(name, v, count));
  }

  void add_bytes(std::string_view name, const void* data, std::size_t n);

  template <class Pod>
  void add_pod(std::string_view name, const Pod& v) {
    static_assert(std::is_trivially_copyable_v<Pod>);
    add_bytes(name, &v, sizeof(Pod));
  }

  template <class Pod>
  void add_vector(std::string_view name, const std::vector<Pod>& v) {
    static_assert(std::is_trivially_copyable_v<Pod>);
    EncodedSection s;
    s.name = std::string(name);
    s.elem_size = sizeof(Pod);
    s.rank = 1;
    s.extents[0] = static_cast<std::int64_t>(v.size());
    s.layout = kLayoutRight;
    s.payload.resize(v.size() * sizeof(Pod));
    if (!v.empty()) std::memcpy(s.payload.data(), v.data(), s.payload.size());
    add(std::move(s));
  }

  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }

  /// The accumulated sections, in add() order. The incremental checkpoint
  /// path (src/elastic) diffs a populated writer against the previous
  /// generation's hashes instead of committing it wholesale.
  [[nodiscard]] const std::vector<EncodedSection>& sections() const noexcept {
    return sections_;
  }

  /// Serialize everything to `path` via write-to-temp + atomic rename.
  /// Returns the committed file size. Throws RestoreError{IoError} on any
  /// filesystem failure (temp file is removed best-effort).
  std::uint64_t commit(const std::string& path, std::uint64_t fingerprint,
                       std::int64_t step) const;

 private:
  std::vector<EncodedSection> sections_;
};

/// Abstract read surface for restore code: a set of named sections plus
/// the envelope metadata (fingerprint, step). FileReader implements it
/// over a single committed file; elastic::ChainReader implements it over
/// a resolved base+delta generation chain. Everything in
/// core/checkpoint.cpp restores through this interface, so a simulation
/// cannot tell the two apart.
class SectionSource {
 public:
  virtual ~SectionSource() = default;

  [[nodiscard]] virtual bool has(std::string_view name) const = 0;

  /// All section names, sorted. Lets restore code enumerate
  /// name-prefixed groups it does not know statically (module sections,
  /// docs/CHECKPOINT.md).
  [[nodiscard]] virtual std::vector<std::string> section_names() const = 0;

  /// Fetch a section by name (integrity-validated on first access).
  /// Throws RestoreError{MissingSection} / {SectionCorrupt}.
  virtual const EncodedSection& section(std::string_view name) = 0;

  [[nodiscard]] virtual std::uint64_t fingerprint() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t step() const noexcept = 0;

  template <class T, int R, class L = pk::LayoutRight>
  pk::View<T, R, L> view(std::string_view name,
                         const std::string& label = "") {
    return decode_view<T, R, L>(section(name), label);
  }

  template <class T, int R, class L, class M>
  void read_view(std::string_view name, const pk::View<T, R, L, M>& dst) {
    decode_view_into(section(name), dst);
  }

  template <class Pod>
  Pod pod(std::string_view name) {
    static_assert(std::is_trivially_copyable_v<Pod>);
    const EncodedSection& s = section(name);
    if (s.payload.size() != sizeof(Pod))
      throw RestoreError(RestoreErrorKind::ShapeMismatch,
                         "section '" + s.name + "' holds " +
                             std::to_string(s.payload.size()) +
                             " bytes, expected pod of " +
                             std::to_string(sizeof(Pod)));
    Pod v;
    std::memcpy(&v, s.payload.data(), sizeof(Pod));
    return v;
  }

  template <class Pod>
  std::vector<Pod> vector(std::string_view name) {
    static_assert(std::is_trivially_copyable_v<Pod>);
    const EncodedSection& s = section(name);
    if (s.elem_size != sizeof(Pod) || s.payload.size() % sizeof(Pod) != 0)
      throw RestoreError(RestoreErrorKind::ShapeMismatch,
                         "section '" + s.name + "' is not an array of " +
                             std::to_string(sizeof(Pod)) + "-byte elements");
    std::vector<Pod> v(s.payload.size() / sizeof(Pod));
    if (!v.empty()) std::memcpy(v.data(), s.payload.data(), s.payload.size());
    return v;
  }

  /// Throws RestoreError{FingerprintMismatch} unless the source was
  /// written by a matching deck/config.
  void require_fingerprint(std::uint64_t expected) const {
    if (fingerprint() != expected)
      throw RestoreError(RestoreErrorKind::FingerprintMismatch,
                         "checkpoint was written by a different deck/config "
                         "(have " +
                             std::to_string(fingerprint()) + ", expected " +
                             std::to_string(expected) + ")");
  }
};

class FileReader : public SectionSource {
 public:
  /// Open + validate the envelope (header CRC, magic, version, size,
  /// table CRC). Section payload CRCs are validated lazily on access.
  explicit FileReader(const std::string& path);

  [[nodiscard]] std::uint64_t fingerprint() const noexcept override {
    return header_.fingerprint;
  }
  [[nodiscard]] std::int64_t step() const noexcept override {
    return header_.step;
  }
  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }
  [[nodiscard]] bool has(std::string_view name) const override {
    return index_.count(std::string(name)) != 0;
  }

  /// All section names in the file, sorted (the index is an ordered map).
  [[nodiscard]] std::vector<std::string> section_names() const override;

  /// Fetch a section by name (CRC-validated on first access). Throws
  /// RestoreError{MissingSection} / {SectionCorrupt}.
  const EncodedSection& section(std::string_view name) override;

  /// CRC-validate every payload now. Restore paths call this before
  /// mutating any live state, so a torn/flipped payload anywhere in the
  /// file surfaces before a single byte of the simulation changes.
  void validate_all();

 private:
  struct Slot {
    EncodedSection section;  // payload filled+validated on first access
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
    bool loaded = false;
  };

  FileHeader header_{};
  std::vector<std::byte> data_;
  std::vector<Slot> sections_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::string path_;
};

}  // namespace vpic::ckpt
