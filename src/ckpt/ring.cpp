#include "ckpt/ring.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

namespace vpic::ckpt {

namespace fs = std::filesystem;

GenerationRing::GenerationRing(std::string base, int keep_last)
    : base_(std::move(base)), keep_last_(std::max(1, keep_last)) {}

std::string GenerationRing::path_for(std::uint64_t gen) const {
  return base_ + ".g" + std::to_string(gen);
}

std::vector<std::uint64_t> GenerationRing::generations() const {
  const fs::path base(base_);
  const fs::path dir =
      base.has_parent_path() ? base.parent_path() : fs::path(".");
  const std::string prefix = base.filename().string() + ".g";

  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0)
      continue;
    const std::string tail = name.substr(prefix.size());
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos)
      continue;  // skips ".tmp" suffixes and unrelated files
    gens.push_back(std::strtoull(tail.c_str(), nullptr, 10));
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::uint64_t GenerationRing::next_generation() const {
  const auto gens = generations();
  return gens.empty() ? 0 : gens.back() + 1;
}

void GenerationRing::prune() const {
  const auto gens = generations();
  std::error_code ec;
  if (gens.size() > static_cast<std::size_t>(keep_last_)) {
    const std::size_t drop = gens.size() - static_cast<std::size_t>(keep_last_);
    for (std::size_t i = 0; i < drop; ++i) fs::remove(path_for(gens[i]), ec);
  }
}

std::size_t GenerationRing::purge() const {
  std::size_t removed = 0;
  std::error_code ec;
  for (std::uint64_t g : generations())
    if (fs::remove(path_for(g), ec)) ++removed;
  remove_stale_tmp();
  return removed;
}

void GenerationRing::remove_stale_tmp() const {
  std::error_code ec;
  const fs::path base(base_);
  const fs::path dir =
      base.has_parent_path() ? base.parent_path() : fs::path(".");
  const std::string prefix = base.filename().string() + ".g";
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + 4 &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - 4, 4, ".tmp") == 0)
      fs::remove(entry.path(), ec);
  }
}

}  // namespace vpic::ckpt
