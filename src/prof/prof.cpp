#include "prof/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "pk/prof_hooks.hpp"

namespace vpic::prof {

namespace {

using steady = std::chrono::steady_clock;

double seconds_between(steady::time_point a, steady::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct RegionAccum {
  std::uint64_t count = 0;
  double total_s = 0;
  double min_s = 0;
  double max_s = 0;
  double child_s = 0;
};

struct TraceEvent {
  std::string name;      // region path (or kernel label)
  const char* cat;       // "region" | "parallel_for" | "fence" | ...
  const char* space;     // exec/memory space name, may be null
  int tid;
  double ts_us;
  double dur_us;
  std::uint64_t work;    // iteration count for kernels, 0 for regions
  char ph = 'X';         // 'X' complete span | 'i' instant (async dispatch)
};

// Cap on retained trace events; beyond it events are counted as dropped
// rather than growing without bound in long runs.
constexpr std::size_t kMaxTraceEvents = 1u << 20;

struct State {
  std::mutex mu;
  Mode mode = Mode::Off;
  steady::time_point base = steady::now();

  std::unordered_map<std::string, RegionAccum> regions;
  std::atomic<std::uint64_t> open_regions{0};
  std::uint64_t unbalanced_pops = 0;

  std::vector<TraceEvent> trace;
  std::uint64_t dropped_trace = 0;

  std::unordered_map<const void*, std::uint64_t> live_allocs;
  AllocStats alloc;

  std::unordered_map<std::string, std::uint64_t> counters;

  std::atomic<std::uint64_t> fences{0};
  std::atomic<std::uint64_t> async_dispatches{0};

  std::atomic<int> next_tid{0};
};

State& S() {
  static State s;
  return s;
}

/// One stack frame per open region (or in-flight kernel dispatch) on the
/// calling thread. Kernel dispatches happen on the thread that calls
/// pk::parallel_*, so nesting composes naturally with explicit regions.
struct Frame {
  std::string path;
  const char* cat;
  const char* space;
  std::uint64_t work;
  steady::time_point start;
  double child_s;
};

thread_local std::vector<Frame> t_frames;

int thread_tid() {
  thread_local int tid = S().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void open_frame(const char* name, const char* cat, const char* space,
                std::uint64_t work) {
  std::string path = t_frames.empty()
                         ? std::string(name)
                         : t_frames.back().path + "/" + name;
  t_frames.push_back(
      {std::move(path), cat, space, work, steady::now(), 0.0});
  S().open_regions.fetch_add(1, std::memory_order_relaxed);
}

void close_frame() {
  const auto now = steady::now();
  State& s = S();
  if (t_frames.empty()) {
    std::lock_guard lk(s.mu);
    ++s.unbalanced_pops;
    return;
  }
  Frame f = std::move(t_frames.back());
  t_frames.pop_back();
  s.open_regions.fetch_sub(1, std::memory_order_relaxed);
  const double dur = seconds_between(f.start, now);
  if (!t_frames.empty()) t_frames.back().child_s += dur;
  const int tid = thread_tid();
  std::lock_guard lk(s.mu);
  RegionAccum& acc = s.regions[f.path];
  if (acc.count == 0) {
    acc.min_s = dur;
    acc.max_s = dur;
  } else {
    acc.min_s = std::min(acc.min_s, dur);
    acc.max_s = std::max(acc.max_s, dur);
  }
  ++acc.count;
  acc.total_s += dur;
  acc.child_s += f.child_s;
  if (s.mode == Mode::Trace) {
    if (s.trace.size() < kMaxTraceEvents) {
      s.trace.push_back({std::move(f.path), f.cat, f.space, tid,
                         seconds_between(s.base, f.start) * 1e6, dur * 1e6,
                         f.work});
    } else {
      ++s.dropped_trace;
    }
  }
}

// ---------------------------------------------------------------------
// pk hook-table handlers (the built-in tool).
// ---------------------------------------------------------------------

void handle_begin_parallel(const char* kind, const char* name,
                           const char* exec_space, std::uint64_t work,
                           std::uint64_t* kernel_id) {
  open_frame(name, kind, exec_space, work);
  // Cookie = nesting depth; stack discipline makes it redundant but it lets
  // a future out-of-order end detect mismatches, as kokkosp kIDs do.
  *kernel_id = t_frames.size();
}

void handle_end_parallel(const char* /*kind*/, std::uint64_t /*kernel_id*/) {
  close_frame();
}

void handle_push_region(const char* name) {
  open_frame(name, "region", nullptr, 0);
}

void handle_pop_region() { close_frame(); }

void handle_allocate(const char* /*space*/, const char* /*label*/,
                     const void* ptr, std::uint64_t bytes) {
  State& s = S();
  std::lock_guard lk(s.mu);
  ++s.alloc.allocs;
  s.alloc.total_bytes += static_cast<std::int64_t>(bytes);
  s.alloc.live_bytes += static_cast<std::int64_t>(bytes);
  s.alloc.peak_bytes = std::max(s.alloc.peak_bytes, s.alloc.live_bytes);
  s.live_allocs[ptr] = bytes;
}

// Fences appear as ordinary frames on the calling thread (path segment =
// fence name), so the summary table shows where a schedule blocks and the
// trace shows the blocked interval.
void handle_begin_fence(const char* name, std::uint32_t instance_id,
                        std::uint64_t* handle) {
  S().fences.fetch_add(1, std::memory_order_relaxed);
  open_frame(name, "fence", nullptr, instance_id);
  *handle = t_frames.size();
}

void handle_end_fence(std::uint64_t /*handle*/) { close_frame(); }

// Asynchronous submissions become counters plus (in trace mode) instant
// events carrying the queue depth, so a trace shows per-instance queue
// occupancy alongside the worker-side execution spans.
void handle_async_dispatch(const char* kind, const char* name,
                           std::uint32_t instance_id,
                           std::uint64_t queue_depth) {
  State& s = S();
  s.async_dispatches.fetch_add(1, std::memory_order_relaxed);
  if (s.mode != Mode::Trace) return;
  const auto now = steady::now();
  const int tid = thread_tid();
  std::string label = std::string(kind) + ":" + name + "@instance" +
                      std::to_string(instance_id);
  std::lock_guard lk(s.mu);
  if (s.trace.size() < kMaxTraceEvents) {
    s.trace.push_back({std::move(label), "async_dispatch", nullptr, tid,
                       seconds_between(s.base, now) * 1e6, 0.0, queue_depth,
                       'i'});
  } else {
    ++s.dropped_trace;
  }
}

void handle_deallocate(const char* /*space*/, const char* /*label*/,
                       const void* ptr, std::uint64_t /*bytes*/) {
  State& s = S();
  std::lock_guard lk(s.mu);
  ++s.alloc.deallocs;
  auto it = s.live_allocs.find(ptr);
  if (it == s.live_allocs.end()) {
    ++s.alloc.unmatched_deallocs;
    return;
  }
  s.alloc.live_bytes -= static_cast<std::int64_t>(it->second);
  s.live_allocs.erase(it);
}

// ---------------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------------

void json_escape_into(std::string& out, const std::string& in) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Summary: return "summary";
    case Mode::Trace: return "trace";
  }
  return "?";
}

Mode mode_from_env() noexcept {
  const char* v = std::getenv("VPIC_PROF");
  if (!v || !*v) return Mode::Off;
  if (!std::strcmp(v, "off") || !std::strcmp(v, "0")) return Mode::Off;
  if (!std::strcmp(v, "summary") || !std::strcmp(v, "on") ||
      !std::strcmp(v, "1"))
    return Mode::Summary;
  if (!std::strcmp(v, "trace") || !std::strcmp(v, "2")) return Mode::Trace;
  std::fprintf(stderr,
               "[vpic::prof] unknown VPIC_PROF value '%s' "
               "(expected off|summary|trace); profiling stays off\n",
               v);
  return Mode::Off;
}

void enable(Mode m) {
  State& s = S();
  {
    std::lock_guard lk(s.mu);
    s.mode = m;
    if (m != Mode::Off && s.regions.empty() && s.trace.empty())
      s.base = steady::now();
  }
  if (m == Mode::Off) {
    pk::prof::clear_event_hooks();
    return;
  }
  pk::prof::EventHooks h;
  h.begin_parallel = &handle_begin_parallel;
  h.end_parallel = &handle_end_parallel;
  h.push_region = &handle_push_region;
  h.pop_region = &handle_pop_region;
  h.allocate = &handle_allocate;
  h.deallocate = &handle_deallocate;
  h.begin_fence = &handle_begin_fence;
  h.end_fence = &handle_end_fence;
  h.async_dispatch = &handle_async_dispatch;
  pk::prof::set_event_hooks(h);
}

void disable() { enable(Mode::Off); }

Mode mode() noexcept {
  State& s = S();
  std::lock_guard lk(s.mu);
  return s.mode;
}

bool enabled() noexcept { return mode() != Mode::Off; }

void push_region(const char* name) { pk::prof::region_push(name); }

void pop_region() { pk::prof::region_pop(); }

namespace {
// Per-thread counter namespace (CounterScope / set_counter_prefix).
thread_local std::string t_counter_prefix;
}  // namespace

void set_counter_prefix(std::string prefix) {
  t_counter_prefix = std::move(prefix);
}

const std::string& counter_prefix() noexcept { return t_counter_prefix; }

void counter_add(const char* name, std::uint64_t delta) noexcept {
  State& s = S();
  std::lock_guard lk(s.mu);
  if (t_counter_prefix.empty()) {
    s.counters[name] += delta;
  } else {
    s.counters[t_counter_prefix + name] += delta;
  }
}

std::uint64_t counter_value(const std::string& name) {
  State& s = S();
  std::lock_guard lk(s.mu);
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

Report report() {
  State& s = S();
  Report r;
  std::lock_guard lk(s.mu);
  r.mode = s.mode;
  r.regions.reserve(s.regions.size());
  for (const auto& [path, acc] : s.regions) {
    RegionStats st;
    st.path = path;
    st.count = acc.count;
    st.total_s = acc.total_s;
    st.min_s = acc.min_s;
    st.max_s = acc.max_s;
    st.child_s = acc.child_s;
    r.regions.push_back(std::move(st));
  }
  std::sort(r.regions.begin(), r.regions.end(),
            [](const RegionStats& a, const RegionStats& b) {
              return a.path < b.path;
            });
  r.counters.assign(s.counters.begin(), s.counters.end());
  std::sort(r.counters.begin(), r.counters.end());
  r.alloc = s.alloc;
  r.open_regions = s.open_regions.load(std::memory_order_relaxed);
  r.unbalanced_pops = s.unbalanced_pops;
  r.dropped_trace_events = s.dropped_trace;
  r.fences = s.fences.load(std::memory_order_relaxed);
  r.async_dispatches = s.async_dispatches.load(std::memory_order_relaxed);
  return r;
}

void reset() {
  State& s = S();
  std::lock_guard lk(s.mu);
  s.regions.clear();
  s.trace.clear();
  s.dropped_trace = 0;
  s.unbalanced_pops = 0;
  s.live_allocs.clear();
  s.alloc = AllocStats{};
  s.counters.clear();
  s.fences.store(0, std::memory_order_relaxed);
  s.async_dispatches.store(0, std::memory_order_relaxed);
  s.base = steady::now();
}

double region_total_seconds(const std::string& name) {
  State& s = S();
  std::lock_guard lk(s.mu);
  double total = 0;
  for (const auto& [path, acc] : s.regions) {
    if (path == name) {
      total += acc.total_s;
      continue;
    }
    const auto pos = path.rfind('/');
    if (pos != std::string::npos &&
        path.compare(pos + 1, std::string::npos, name) == 0)
      total += acc.total_s;
  }
  return total;
}

std::string Report::to_json() const {
  std::string j = "{\"schema\":\"vpic-prof-v1\",\"mode\":\"";
  j += prof::to_string(mode);
  j += "\",\"regions\":[";
  bool first = true;
  for (const auto& r : regions) {
    if (!first) j += ",";
    first = false;
    j += "{\"path\":\"";
    json_escape_into(j, r.path);
    j += "\",\"count\":" + std::to_string(r.count);
    j += ",\"total_s\":" + fmt_double(r.total_s);
    j += ",\"self_s\":" + fmt_double(r.self_s());
    j += ",\"min_s\":" + fmt_double(r.min_s);
    j += ",\"max_s\":" + fmt_double(r.max_s);
    j += ",\"mean_s\":" + fmt_double(r.mean_s());
    j += "}";
  }
  j += "],\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) j += ",";
    first = false;
    j += "\"";
    json_escape_into(j, name);
    j += "\":" + std::to_string(value);
  }
  j += "},\"alloc\":{\"allocs\":" + std::to_string(alloc.allocs);
  j += ",\"deallocs\":" + std::to_string(alloc.deallocs);
  j += ",\"unmatched_deallocs\":" + std::to_string(alloc.unmatched_deallocs);
  j += ",\"live_bytes\":" + std::to_string(alloc.live_bytes);
  j += ",\"peak_bytes\":" + std::to_string(alloc.peak_bytes);
  j += ",\"total_bytes\":" + std::to_string(alloc.total_bytes);
  j += "},\"open_regions\":" + std::to_string(open_regions);
  j += ",\"unbalanced_pops\":" + std::to_string(unbalanced_pops);
  j += ",\"dropped_trace_events\":" + std::to_string(dropped_trace_events);
  j += ",\"fences\":" + std::to_string(fences);
  j += ",\"async_dispatches\":" + std::to_string(async_dispatches);
  j += "}";
  return j;
}

std::string Report::human_table() const {
  // Column widths sized to content.
  std::size_t wpath = std::strlen("region");
  for (const auto& r : regions) wpath = std::max(wpath, r.path.size());
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "%-*s %10s %12s %12s %12s %12s\n",
                static_cast<int>(wpath), "region", "count", "total(ms)",
                "self(ms)", "min(ms)", "max(ms)");
  out += line;
  out += std::string(wpath + 10 + 12 * 4 + 5, '-') + "\n";
  for (const auto& r : regions) {
    std::snprintf(line, sizeof(line),
                  "%-*s %10llu %12.3f %12.3f %12.3f %12.3f\n",
                  static_cast<int>(wpath), r.path.c_str(),
                  static_cast<unsigned long long>(r.count), r.total_s * 1e3,
                  r.self_s() * 1e3, r.min_s * 1e3, r.max_s * 1e3);
    out += line;
  }
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "views: %lld alloc / %lld dealloc, live %lld B, peak %lld B"
                ", total %lld B\n",
                static_cast<long long>(alloc.allocs),
                static_cast<long long>(alloc.deallocs),
                static_cast<long long>(alloc.live_bytes),
                static_cast<long long>(alloc.peak_bytes),
                static_cast<long long>(alloc.total_bytes));
  out += line;
  if (open_regions || unbalanced_pops || dropped_trace_events) {
    std::snprintf(line, sizeof(line),
                  "warnings: %llu open regions, %llu unbalanced pops, "
                  "%llu dropped trace events\n",
                  static_cast<unsigned long long>(open_regions),
                  static_cast<unsigned long long>(unbalanced_pops),
                  static_cast<unsigned long long>(dropped_trace_events));
    out += line;
  }
  return out;
}

std::string trace_json() {
  State& s = S();
  std::lock_guard lk(s.mu);
  std::string j = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  j += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
       "{\"name\":\"vpic\"}}";
  for (const auto& e : s.trace) {
    j += ",{\"name\":\"";
    json_escape_into(j, e.name);
    j += "\",\"cat\":\"";
    j += e.cat;
    if (e.ph == 'i') {
      // Instant event (async dispatch): thread-scoped tick, no duration;
      // `work` carries the instance queue depth at submission.
      j += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + fmt_double(e.ts_us);
    } else {
      j += "\",\"ph\":\"X\",\"ts\":" + fmt_double(e.ts_us);
      j += ",\"dur\":" + fmt_double(e.dur_us);
    }
    j += ",\"pid\":0,\"tid\":" + std::to_string(e.tid);
    j += ",\"args\":{";
    if (e.space) {
      j += "\"space\":\"";
      j += e.space;
      j += "\",";
    }
    j += "\"work\":" + std::to_string(e.work) + "}}";
  }
  j += "]}";
  return j;
}

bool write_chrome_trace(const std::string& path) {
  const std::string j = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

/// Startup/shutdown driver: reads VPIC_PROF at static-init time (so any
/// binary linking vpic_prof is profiled with zero code changes) and emits
/// the summary table / trace file at exit. Constructed after the State and
/// pk hook singletons it touches, so it is destroyed before them.
struct AutoInit {
  AutoInit() {
    (void)S();
    (void)pk::prof::hooks();
    (void)pk::prof::hooks_active();
    (void)pk::prof::alloc_count();
    const Mode m = mode_from_env();
    if (m != Mode::Off) enable(m);
  }
  ~AutoInit() {
    const Mode m = mode();
    if (m == Mode::Off) return;
    if (m == Mode::Trace) {
      const char* env = std::getenv("VPIC_PROF_TRACE");
      const std::string path = env && *env ? env : "vpic_prof_trace.json";
      if (write_chrome_trace(path))
        std::fprintf(stderr,
                     "[vpic::prof] chrome://tracing trace written to %s\n",
                     path.c_str());
      else
        std::fprintf(stderr, "[vpic::prof] failed to write trace to %s\n",
                     path.c_str());
    }
    std::fprintf(stderr, "[vpic::prof] %s summary:\n%s",
                 to_string(m), report().human_table().c_str());
  }
};

AutoInit g_auto_init;

}  // namespace

}  // namespace vpic::prof
