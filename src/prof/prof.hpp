// prof/prof.hpp
//
// vpic::prof — the observability subsystem (docs/PROFILING.md). Modeled on
// the Kokkos Tools architecture: the portability layer fires events
// through a registrable hook table (pk/prof_hooks.hpp); this module is the
// built-in tool that consumes them. It provides
//
//  * a hierarchical region profiler: push_region/pop_region (or RAII
//    ScopedRegion) aggregate count / total / min / max / self time per
//    region *path* ("step/push/advance_p[auto]"), with kernel dispatches
//    appearing as child regions of whatever region was open;
//  * a chrome://tracing JSON trace writer (load the file in
//    chrome://tracing or https://ui.perfetto.dev);
//  * an allocation tracker pairing pk::View allocate/deallocate events
//    (live/peak bytes, unmatched frees) that subsumes the
//    pk::view_alloc_count counter.
//
// Activation: set VPIC_PROF=summary or VPIC_PROF=trace in the environment
// (any binary linking this library auto-enables at startup and emits the
// summary table / trace file at exit), or call prof::enable(Mode)
// programmatically. When off, annotated code costs one predictable branch
// per region or dispatch.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vpic::prof {

enum class Mode : std::uint8_t { Off, Summary, Trace };

const char* to_string(Mode m) noexcept;

/// Parse VPIC_PROF (off|summary|trace, default off; unknown values warn on
/// stderr and resolve to off), mirroring how pk::initialize reads
/// OMP_NUM_THREADS.
Mode mode_from_env() noexcept;

/// Install (or, with Mode::Off, remove) the built-in handlers on the
/// pk::prof hook table. Not thread-safe against in-flight dispatch:
/// enable/disable from serial code, as with Kokkos Tools.
void enable(Mode m);
void disable();

[[nodiscard]] Mode mode() noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Open / close a named region on the calling thread. Pops without a
/// matching push are counted (Report::unbalanced_pops) and otherwise
/// ignored; regions never closed are visible as Report::open_regions.
void push_region(const char* name);
void pop_region();

/// Named event counters. Unlike regions these are *always on* (a counter
/// costs one short critical section, and callers fire them per dispatch
/// decision, not per particle), so rare events — which path the push
/// dispatcher chose, whether the sort went counting or radix, whether the
/// autotune cache hit / was corrupt — stay observable even with VPIC_PROF
/// unset. Counters appear in Report::counters, to_json() and the summary
/// table; reset() clears them.
void counter_add(const char* name, std::uint64_t delta = 1) noexcept;
[[nodiscard]] std::uint64_t counter_value(const std::string& name);

/// Thread-local counter namespace: while set, every counter_add on the
/// calling thread records under "<prefix><name>". This is how the farm
/// scheduler scopes the engine's dispatch/tune counters per job — a worker
/// sets "job.<name>." around each slice, so one global counter table keeps
/// per-tenant columns without threading a context handle through every
/// call site (docs/FARM.md). Empty string (the default) means unscoped.
void set_counter_prefix(std::string prefix);
[[nodiscard]] const std::string& counter_prefix() noexcept;

/// RAII form: installs `prefix` on this thread, restores the previous
/// prefix on destruction (scopes nest by replacement, not concatenation).
class CounterScope {
 public:
  explicit CounterScope(std::string prefix) : prev_(counter_prefix()) {
    set_counter_prefix(std::move(prefix));
  }
  ~CounterScope() { set_counter_prefix(std::move(prev_)); }
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  std::string prev_;
};

/// RAII region. The optional `sink` accumulates the region's wall time
/// even when profiling is off — it is how Simulation keeps its legacy
/// push_seconds()/sort_seconds() accessors live at zero configuration.
class ScopedRegion {
 public:
  explicit ScopedRegion(const char* name, double* sink = nullptr)
      : sink_(sink) {
    if (sink_) start_ = std::chrono::steady_clock::now();
    push_region(name);
  }
  ~ScopedRegion() {
    pop_region();
    if (sink_)
      *sink_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_{};
};

/// Aggregated statistics for one region path.
struct RegionStats {
  std::string path;        // "a/b/c" — '/'-joined nesting
  std::uint64_t count = 0; // times the region closed
  double total_s = 0;      // inclusive wall time
  double min_s = 0;
  double max_s = 0;
  double child_s = 0;      // time attributed to child regions/kernels
  [[nodiscard]] double self_s() const noexcept { return total_s - child_s; }
  [[nodiscard]] double mean_s() const noexcept {
    return count ? total_s / static_cast<double>(count) : 0.0;
  }
};

/// View allocation accounting (fed by pk::View allocate/deallocate events).
struct AllocStats {
  std::int64_t allocs = 0;
  std::int64_t deallocs = 0;
  std::int64_t unmatched_deallocs = 0;  // frees with no observed allocation
  std::int64_t live_bytes = 0;
  std::int64_t peak_bytes = 0;
  std::int64_t total_bytes = 0;  // cumulative allocated
};

struct Report {
  Mode mode = Mode::Off;
  std::vector<RegionStats> regions;  // sorted by path
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // by name
  AllocStats alloc;
  std::uint64_t open_regions = 0;      // pushed but not yet popped
  std::uint64_t unbalanced_pops = 0;   // pops with empty stack
  std::uint64_t dropped_trace_events = 0;
  std::uint64_t fences = 0;            // begin_fence events observed
  std::uint64_t async_dispatches = 0;  // instance submissions observed

  /// Machine-readable form (schema "vpic-prof-v1").
  [[nodiscard]] std::string to_json() const;
  /// Human-readable fixed-width table (the VPIC_PROF=summary exit output).
  [[nodiscard]] std::string human_table() const;
};

/// Snapshot of everything accumulated since enable()/reset().
[[nodiscard]] Report report();

/// Clear accumulated regions, allocation stats and trace events. Does NOT
/// reset pk::view_alloc_count (that counter is cumulative by contract).
void reset();

/// Total inclusive seconds of every region whose path's last segment (or
/// whole path) equals `name` — the "thin wrapper" backing for legacy
/// accessors like Simulation::push_seconds.
[[nodiscard]] double region_total_seconds(const std::string& name);

/// Serialize the collected trace in chrome://tracing "Trace Event" JSON.
/// Only populated in Mode::Trace.
[[nodiscard]] std::string trace_json();

/// Write trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace vpic::prof
