#include "gs/gather_scatter.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "prof/prof.hpp"

namespace vpic::gs {

pk::View<std::uint32_t, 1> make_keys(Pattern p, index_t n, index_t unique) {
  pk::View<std::uint32_t, 1> keys("gs_keys", n);
  switch (p) {
    case Pattern::Contiguous:
      pk::parallel_for(n, [&](index_t i) {
        keys(i) = static_cast<std::uint32_t>(i);
      });
      break;
    case Pattern::Repeated:
    case Pattern::Stencil5: {
      // Clustered repeats: key j occupies slots [j*r, (j+1)*r) — the
      // "standard classification" starting state of the paper's benchmark
      // (all repeats of a key adjacent, like particles sharing a cell).
      const index_t r = n / unique > 0 ? n / unique : 1;
      pk::parallel_for(n, [&](index_t i) {
        keys(i) = static_cast<std::uint32_t>(
            std::min(unique - 1, i / r));
      });
      break;
    }
  }
  return keys;
}

index_t table_size(Pattern p, index_t unique) {
  switch (p) {
    case Pattern::Contiguous:
    case Pattern::Repeated:
      return unique;
    case Pattern::Stencil5:
      return unique + 1;  // +1 for the wrapped +-1 halo convenience
  }
  return unique;
}

std::uint64_t logical_bytes(Pattern p, index_t n) {
  const auto un = static_cast<std::uint64_t>(n);
  switch (p) {
    case Pattern::Contiguous:
    case Pattern::Repeated:
      // key read (4) + gather read (8) + scatter RMW (16) + src read (8)
      return un * (4 + 8 + 16 + 8);
    case Pattern::Stencil5:
      // key read (4) + 5 gathers (40) + atomic scatter RMW (16) + out (8)
      return un * (4 + 40 + 16 + 8);
  }
  return 0;
}

namespace {
HostResult finish(double seconds, std::uint64_t bytes, double checksum) {
  HostResult r;
  r.seconds = seconds;
  r.gb_per_s = static_cast<double>(bytes) / seconds / 1e9;
  r.checksum = checksum;
  return r;
}
}  // namespace

HostResult run_gather(const pk::View<std::uint32_t, 1>& keys,
                      const pk::View<double, 1>& data,
                      pk::View<double, 1>& out) {
  const index_t n = keys.size();
  const std::uint32_t* PK_RESTRICT k = keys.data();
  const double* PK_RESTRICT d = data.data();
  double* PK_RESTRICT o = out.data();
  prof::ScopedRegion region("gs/gather");
  pk::Timer t;
  pk::parallel_for("gs/gather", n, [=](index_t i) { o[i] = d[k[i]]; });
  const double sec = t.seconds();
  return finish(sec, static_cast<std::uint64_t>(n) * (4 + 8 + 8),
                o[0] + o[n / 2] + o[n - 1]);
}

HostResult run_scatter_add(const pk::View<std::uint32_t, 1>& keys,
                           pk::View<double, 1>& data,
                           const pk::View<double, 1>& src) {
  const index_t n = keys.size();
  const std::uint32_t* PK_RESTRICT k = keys.data();
  double* PK_RESTRICT d = data.data();
  const double* PK_RESTRICT s = src.data();
  prof::ScopedRegion region("gs/scatter_add");
  pk::Timer t;
  pk::parallel_for("gs/scatter_add", n,
                   [=](index_t i) { pk::atomic_add(&d[k[i]], s[i]); });
  const double sec = t.seconds();
  return finish(sec, static_cast<std::uint64_t>(n) * (4 + 16 + 8),
                d[k[0]] + d[k[n - 1]]);
}

HostResult run_stencil5(const pk::View<std::uint32_t, 1>& keys,
                        pk::View<double, 1>& data,
                        pk::View<double, 1>& out, index_t stride) {
  const index_t n = keys.size();
  const index_t m = data.size();
  const std::uint32_t* PK_RESTRICT k = keys.data();
  double* PK_RESTRICT d = data.data();
  double* PK_RESTRICT o = out.data();
  prof::ScopedRegion region("gs/stencil5");
  pk::Timer t;
  pk::parallel_for("gs/stencil5", n, [=](index_t i) {
    const auto c = static_cast<index_t>(k[i]);
    const index_t xm = (c + m - 1) % m;
    const index_t xp = (c + 1) % m;
    const index_t ym = (c + m - stride) % m;
    const index_t yp = (c + stride) % m;
    const double v = d[c] + d[xm] + d[xp] + d[ym] + d[yp];
    o[i] = v;
    // Scatter phase: accumulate back to the center point, as the particle
    // push does (this is a gather-scatter benchmark).
    pk::atomic_add(&d[c], 0.25 * v);
  });
  const double sec = t.seconds();
  return finish(sec, logical_bytes(Pattern::Stencil5, n),
                o[0] + o[n / 2] + o[n - 1]);
}

HostResult run_gather_scatter(const pk::View<std::uint32_t, 1>& keys,
                              pk::View<double, 1>& data,
                              pk::View<double, 1>& out) {
  const index_t n = keys.size();
  const std::uint32_t* PK_RESTRICT k = keys.data();
  double* PK_RESTRICT d = data.data();
  double* PK_RESTRICT o = out.data();
  prof::ScopedRegion region("gs/gather_scatter");
  pk::Timer t;
  pk::parallel_for("gs/gather_scatter", n, [=](index_t i) {
    const double v = d[k[i]];
    o[i] = v;
    pk::atomic_add(&d[k[i]], 1.0);
  });
  const double sec = t.seconds();
  return finish(sec, logical_bytes(Pattern::Repeated, n),
                o[0] + o[n - 1]);
}

gpusim::KernelTiming model_gather_scatter(
    const gpusim::DeviceSpec& dev, const pk::View<std::uint32_t, 1>& keys,
    index_t unique) {
  const auto n = static_cast<std::uint64_t>(keys.size());
  gpusim::CacheModel cache(
      static_cast<std::uint64_t>(dev.llc_bytes()), dev.line_bytes, 16);

  // Gather of 8-byte elements, then atomic scatter back to the same table.
  const auto gather = gpusim::analyze_stream(
      keys.data(), n, 8, dev, &cache, /*atomics=*/false);
  const auto scatter = gpusim::analyze_stream(
      keys.data(), n, 8, dev, &cache, /*atomics=*/true);
  // Key array + output stream through DRAM.
  const auto kread = gpusim::analyze_streaming(n, 4, dev);
  const auto owrite = gpusim::analyze_streaming(n, 8, dev);

  gpusim::KernelProfile p;
  p.threads = n;
  p.flops = static_cast<double>(n);  // one add per element
  const auto lb = static_cast<std::uint64_t>(dev.line_bytes);
  p.dram_bytes = (gather.dram_lines + 2 * scatter.dram_lines +
                  kread.dram_lines + owrite.dram_lines) *
                 lb;
  p.llc_bytes = (gather.llc_lines + 2 * scatter.llc_lines) * lb;
  p.transactions = gather.transactions + scatter.transactions +
                   kread.transactions + owrite.transactions;
  p.warp_rounds = gather.warps + scatter.warps + kread.warps + owrite.warps;
  p.atomic_serial = scatter.atomic_conflicts + scatter.window_conflicts;
  p.logical_bytes = logical_bytes(Pattern::Repeated, keys.size());
  (void)unique;
  return gpusim::time_kernel(dev, p);
}

gpusim::KernelTiming model_stencil5(const gpusim::DeviceSpec& dev,
                                    const pk::View<std::uint32_t, 1>& keys,
                                    index_t unique, index_t stride) {
  const auto n = static_cast<std::uint64_t>(keys.size());
  const auto m = static_cast<std::uint64_t>(table_size(Pattern::Stencil5,
                                                       unique));
  gpusim::CacheModel cache(
      static_cast<std::uint64_t>(dev.llc_bytes()), dev.line_bytes, 16);

  // Five gathers at offsets {0, +-1, +-stride} (wrapped) plus an atomic
  // scatter back to the center point: analyze each shifted stream against
  // the shared cache.
  gpusim::KernelProfile p;
  p.threads = n;
  p.flops = 6.0 * static_cast<double>(n);
  const auto lb = static_cast<std::uint64_t>(dev.line_bytes);
  std::vector<std::uint32_t> shifted(n);
  const std::int64_t offs[5] = {0, -1, +1,
                                -static_cast<std::int64_t>(stride),
                                +static_cast<std::int64_t>(stride)};
  for (const auto off : offs) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::int64_t>(keys(static_cast<index_t>(i)));
      shifted[i] = static_cast<std::uint32_t>(
          (c + off + static_cast<std::int64_t>(m)) %
          static_cast<std::int64_t>(m));
    }
    const auto s = gpusim::analyze_stream(shifted.data(), n, 8, dev, &cache,
                                          /*atomics=*/false);
    p.dram_bytes += s.dram_lines * lb;
    p.llc_bytes += s.llc_lines * lb;
    p.transactions += s.transactions;
    p.warp_rounds += s.warps;
  }
  // Scatter phase: atomic RMW on the center point.
  const auto scatter = gpusim::analyze_stream(keys.data(), n, 8, dev, &cache,
                                              /*atomics=*/true);
  p.dram_bytes += 2 * scatter.dram_lines * lb;
  p.llc_bytes += 2 * scatter.llc_lines * lb;
  p.transactions += scatter.transactions;
  p.warp_rounds += scatter.warps;
  p.atomic_serial = scatter.atomic_conflicts + scatter.window_conflicts;
  const auto kread = gpusim::analyze_streaming(n, 4, dev);
  const auto owrite = gpusim::analyze_streaming(n, 8, dev);
  p.dram_bytes += (kread.dram_lines + owrite.dram_lines) * lb;
  p.transactions += kread.transactions + owrite.transactions;
  p.warp_rounds += kread.warps + owrite.warps;
  p.logical_bytes = logical_bytes(Pattern::Stencil5, keys.size());
  return gpusim::time_kernel(dev, p);
}

}  // namespace vpic::gs
