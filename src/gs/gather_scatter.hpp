// gs/gather_scatter.hpp
//
// The gather-scatter microbenchmark of Section 5.4: N double-precision
// elements accessed through a key array under three patterns —
//
//   Contiguous  unique keys in sorted order (ideal, fully coalesced)
//   Repeated    `unique` distinct keys each repeated N/unique times
//               (high atomic contention on the scatter)
//   Stencil5    5-point stencil around each key (the particle-push-like
//               irregular pattern)
//
// Each kernel runs two ways: (a) real execution on the host CPU with
// measured wall time, and (b) through the analytic device model (gpusim)
// for the Table-1 platforms. Both report the paper's bandwidth metric:
// total logical data movement / time.
#pragma once

#include <cstdint>

#include "gpusim/gpusim.hpp"
#include "pk/pk.hpp"

namespace vpic::gs {

using pk::index_t;

enum class Pattern : std::uint8_t { Contiguous, Repeated, Stencil5 };

inline const char* to_string(Pattern p) noexcept {
  switch (p) {
    case Pattern::Contiguous:
      return "contiguous";
    case Pattern::Repeated:
      return "repeated";
    case Pattern::Stencil5:
      return "stencil5";
  }
  return "?";
}

/// Key array for a pattern: n accesses over `unique` distinct keys.
/// Contiguous: unique == n, key[i] = i. Repeated/Stencil5: each key value
/// appears n/unique times, clustered (the unsorted state a PIC code sees
/// after particles bunch in cells).
pk::View<std::uint32_t, 1> make_keys(Pattern p, index_t n, index_t unique);

/// Number of distinct data elements the pattern touches (table size).
index_t table_size(Pattern p, index_t unique);

/// Logical data movement per kernel invocation in bytes (the paper's
/// bandwidth numerator): key reads + data reads/writes.
std::uint64_t logical_bytes(Pattern p, index_t n);

// ----------------------------------------------------------------------
// Real host execution (measured).
// ----------------------------------------------------------------------

struct HostResult {
  double seconds = 0;
  double gb_per_s = 0;
  double checksum = 0;  // defeats dead-code elimination; testable
};

/// out[i] = data[key[i]]
HostResult run_gather(const pk::View<std::uint32_t, 1>& keys,
                      const pk::View<double, 1>& data,
                      pk::View<double, 1>& out);

/// data[key[i]] += src[i]  (atomic)
HostResult run_scatter_add(const pk::View<std::uint32_t, 1>& keys,
                           pk::View<double, 1>& data,
                           const pk::View<double, 1>& src);

/// out[i] = sum of data[key[i] + {0, +-1, +-stride}] (wrapped), then an
/// atomic accumulate back to the center point — the 5-point gather-scatter
/// stencil. `data` is mutated by the scatter phase.
HostResult run_stencil5(const pk::View<std::uint32_t, 1>& keys,
                        pk::View<double, 1>& data,
                        pk::View<double, 1>& out, index_t stride);

/// Combined gather + atomic scatter (the benchmark's headline kernel).
HostResult run_gather_scatter(const pk::View<std::uint32_t, 1>& keys,
                              pk::View<double, 1>& data,
                              pk::View<double, 1>& out);

// ----------------------------------------------------------------------
// Modeled execution on a Table-1 device.
// ----------------------------------------------------------------------

/// Model the gather+scatter kernel over `keys` on `dev`; element type is
/// double (8 bytes), table of `unique` elements.
gpusim::KernelTiming model_gather_scatter(
    const gpusim::DeviceSpec& dev, const pk::View<std::uint32_t, 1>& keys,
    index_t unique);

/// Model the 5-point stencil kernel.
gpusim::KernelTiming model_stencil5(const gpusim::DeviceSpec& dev,
                                    const pk::View<std::uint32_t, 1>& keys,
                                    index_t unique, index_t stride);

}  // namespace vpic::gs
