# Empty compiler generated dependencies file for ablation_gpu_aware_mpi.
# This may be replaced when dependencies are built.
