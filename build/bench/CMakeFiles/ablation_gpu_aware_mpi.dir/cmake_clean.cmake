file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_aware_mpi.dir/ablation_gpu_aware_mpi.cpp.o"
  "CMakeFiles/ablation_gpu_aware_mpi.dir/ablation_gpu_aware_mpi.cpp.o.d"
  "ablation_gpu_aware_mpi"
  "ablation_gpu_aware_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_aware_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
