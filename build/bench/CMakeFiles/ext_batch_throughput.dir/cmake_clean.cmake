file(REMOVE_RECURSE
  "CMakeFiles/ext_batch_throughput.dir/ext_batch_throughput.cpp.o"
  "CMakeFiles/ext_batch_throughput.dir/ext_batch_throughput.cpp.o.d"
  "ext_batch_throughput"
  "ext_batch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
