# Empty dependencies file for fig4_push_vectorization.
# This may be replaced when dependencies are built.
