file(REMOVE_RECURSE
  "CMakeFiles/fig4_push_vectorization.dir/fig4_push_vectorization.cpp.o"
  "CMakeFiles/fig4_push_vectorization.dir/fig4_push_vectorization.cpp.o.d"
  "fig4_push_vectorization"
  "fig4_push_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_push_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
