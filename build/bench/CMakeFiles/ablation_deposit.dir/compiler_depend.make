# Empty compiler generated dependencies file for ablation_deposit.
# This may be replaced when dependencies are built.
