file(REMOVE_RECURSE
  "CMakeFiles/ablation_deposit.dir/ablation_deposit.cpp.o"
  "CMakeFiles/ablation_deposit.dir/ablation_deposit.cpp.o.d"
  "ablation_deposit"
  "ablation_deposit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deposit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
