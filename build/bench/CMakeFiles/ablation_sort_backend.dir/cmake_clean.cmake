file(REMOVE_RECURSE
  "CMakeFiles/ablation_sort_backend.dir/ablation_sort_backend.cpp.o"
  "CMakeFiles/ablation_sort_backend.dir/ablation_sort_backend.cpp.o.d"
  "ablation_sort_backend"
  "ablation_sort_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sort_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
