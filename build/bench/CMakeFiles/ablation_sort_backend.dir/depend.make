# Empty dependencies file for ablation_sort_backend.
# This may be replaced when dependencies are built.
