# Empty dependencies file for fig9_grid_sweep.
# This may be replaced when dependencies are built.
