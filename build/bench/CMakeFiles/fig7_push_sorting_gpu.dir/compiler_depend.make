# Empty compiler generated dependencies file for fig7_push_sorting_gpu.
# This may be replaced when dependencies are built.
