file(REMOVE_RECURSE
  "CMakeFiles/fig7_push_sorting_gpu.dir/fig7_push_sorting_gpu.cpp.o"
  "CMakeFiles/fig7_push_sorting_gpu.dir/fig7_push_sorting_gpu.cpp.o.d"
  "fig7_push_sorting_gpu"
  "fig7_push_sorting_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_push_sorting_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
