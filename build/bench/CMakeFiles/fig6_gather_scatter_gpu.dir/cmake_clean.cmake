file(REMOVE_RECURSE
  "CMakeFiles/fig6_gather_scatter_gpu.dir/fig6_gather_scatter_gpu.cpp.o"
  "CMakeFiles/fig6_gather_scatter_gpu.dir/fig6_gather_scatter_gpu.cpp.o.d"
  "fig6_gather_scatter_gpu"
  "fig6_gather_scatter_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gather_scatter_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
