# Empty compiler generated dependencies file for fig6_gather_scatter_gpu.
# This may be replaced when dependencies are built.
