file(REMOVE_RECURSE
  "CMakeFiles/fig3_vectorization_micro.dir/fig3_vectorization_micro.cpp.o"
  "CMakeFiles/fig3_vectorization_micro.dir/fig3_vectorization_micro.cpp.o.d"
  "fig3_vectorization_micro"
  "fig3_vectorization_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vectorization_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
