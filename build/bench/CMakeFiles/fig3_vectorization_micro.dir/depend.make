# Empty dependencies file for fig3_vectorization_micro.
# This may be replaced when dependencies are built.
