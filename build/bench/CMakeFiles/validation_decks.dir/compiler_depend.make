# Empty compiler generated dependencies file for validation_decks.
# This may be replaced when dependencies are built.
