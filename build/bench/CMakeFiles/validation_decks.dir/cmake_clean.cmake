file(REMOVE_RECURSE
  "CMakeFiles/validation_decks.dir/validation_decks.cpp.o"
  "CMakeFiles/validation_decks.dir/validation_decks.cpp.o.d"
  "validation_decks"
  "validation_decks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_decks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
