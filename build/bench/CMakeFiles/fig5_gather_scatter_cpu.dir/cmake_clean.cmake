file(REMOVE_RECURSE
  "CMakeFiles/fig5_gather_scatter_cpu.dir/fig5_gather_scatter_cpu.cpp.o"
  "CMakeFiles/fig5_gather_scatter_cpu.dir/fig5_gather_scatter_cpu.cpp.o.d"
  "fig5_gather_scatter_cpu"
  "fig5_gather_scatter_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gather_scatter_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
