# Empty dependencies file for fig5_gather_scatter_cpu.
# This may be replaced when dependencies are built.
