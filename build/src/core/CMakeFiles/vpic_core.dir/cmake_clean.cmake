file(REMOVE_RECURSE
  "CMakeFiles/vpic_core.dir/accumulator.cpp.o"
  "CMakeFiles/vpic_core.dir/accumulator.cpp.o.d"
  "CMakeFiles/vpic_core.dir/decks.cpp.o"
  "CMakeFiles/vpic_core.dir/decks.cpp.o.d"
  "CMakeFiles/vpic_core.dir/diagnostics.cpp.o"
  "CMakeFiles/vpic_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/vpic_core.dir/domain.cpp.o"
  "CMakeFiles/vpic_core.dir/domain.cpp.o.d"
  "CMakeFiles/vpic_core.dir/field.cpp.o"
  "CMakeFiles/vpic_core.dir/field.cpp.o.d"
  "CMakeFiles/vpic_core.dir/interpolator.cpp.o"
  "CMakeFiles/vpic_core.dir/interpolator.cpp.o.d"
  "CMakeFiles/vpic_core.dir/push.cpp.o"
  "CMakeFiles/vpic_core.dir/push.cpp.o.d"
  "CMakeFiles/vpic_core.dir/simulation.cpp.o"
  "CMakeFiles/vpic_core.dir/simulation.cpp.o.d"
  "libvpic_core.a"
  "libvpic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
