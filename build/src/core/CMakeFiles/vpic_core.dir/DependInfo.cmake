
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulator.cpp" "src/core/CMakeFiles/vpic_core.dir/accumulator.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/accumulator.cpp.o.d"
  "/root/repo/src/core/decks.cpp" "src/core/CMakeFiles/vpic_core.dir/decks.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/decks.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/core/CMakeFiles/vpic_core.dir/diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/diagnostics.cpp.o.d"
  "/root/repo/src/core/domain.cpp" "src/core/CMakeFiles/vpic_core.dir/domain.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/domain.cpp.o.d"
  "/root/repo/src/core/field.cpp" "src/core/CMakeFiles/vpic_core.dir/field.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/field.cpp.o.d"
  "/root/repo/src/core/interpolator.cpp" "src/core/CMakeFiles/vpic_core.dir/interpolator.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/interpolator.cpp.o.d"
  "/root/repo/src/core/push.cpp" "src/core/CMakeFiles/vpic_core.dir/push.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/push.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/vpic_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/vpic_core.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pk/CMakeFiles/vpic_pk.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/vpic_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
