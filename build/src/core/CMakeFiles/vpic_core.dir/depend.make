# Empty dependencies file for vpic_core.
# This may be replaced when dependencies are built.
