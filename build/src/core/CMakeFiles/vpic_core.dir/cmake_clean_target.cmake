file(REMOVE_RECURSE
  "libvpic_core.a"
)
