file(REMOVE_RECURSE
  "libvpic_codestats.a"
)
