# Empty compiler generated dependencies file for vpic_codestats.
# This may be replaced when dependencies are built.
