file(REMOVE_RECURSE
  "CMakeFiles/vpic_codestats.dir/codestats.cpp.o"
  "CMakeFiles/vpic_codestats.dir/codestats.cpp.o.d"
  "libvpic_codestats.a"
  "libvpic_codestats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_codestats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
