# Empty compiler generated dependencies file for vpic_kernels.
# This may be replaced when dependencies are built.
