file(REMOVE_RECURSE
  "CMakeFiles/vpic_kernels.dir/rajaperf_kernels.cpp.o"
  "CMakeFiles/vpic_kernels.dir/rajaperf_kernels.cpp.o.d"
  "libvpic_kernels.a"
  "libvpic_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
