file(REMOVE_RECURSE
  "libvpic_kernels.a"
)
