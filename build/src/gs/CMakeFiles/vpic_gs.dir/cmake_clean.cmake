file(REMOVE_RECURSE
  "CMakeFiles/vpic_gs.dir/gather_scatter.cpp.o"
  "CMakeFiles/vpic_gs.dir/gather_scatter.cpp.o.d"
  "libvpic_gs.a"
  "libvpic_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
