# Empty dependencies file for vpic_gs.
# This may be replaced when dependencies are built.
