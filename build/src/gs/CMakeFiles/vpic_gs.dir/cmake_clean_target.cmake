file(REMOVE_RECURSE
  "libvpic_gs.a"
)
