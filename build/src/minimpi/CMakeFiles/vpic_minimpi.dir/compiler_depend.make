# Empty compiler generated dependencies file for vpic_minimpi.
# This may be replaced when dependencies are built.
