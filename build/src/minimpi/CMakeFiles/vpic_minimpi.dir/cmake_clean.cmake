file(REMOVE_RECURSE
  "CMakeFiles/vpic_minimpi.dir/minimpi.cpp.o"
  "CMakeFiles/vpic_minimpi.dir/minimpi.cpp.o.d"
  "libvpic_minimpi.a"
  "libvpic_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
