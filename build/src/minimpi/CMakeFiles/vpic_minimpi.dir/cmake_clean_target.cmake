file(REMOVE_RECURSE
  "libvpic_minimpi.a"
)
