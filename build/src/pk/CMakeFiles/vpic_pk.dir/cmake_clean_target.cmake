file(REMOVE_RECURSE
  "libvpic_pk.a"
)
