file(REMOVE_RECURSE
  "CMakeFiles/vpic_pk.dir/config.cpp.o"
  "CMakeFiles/vpic_pk.dir/config.cpp.o.d"
  "libvpic_pk.a"
  "libvpic_pk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_pk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
