# Empty compiler generated dependencies file for vpic_pk.
# This may be replaced when dependencies are built.
