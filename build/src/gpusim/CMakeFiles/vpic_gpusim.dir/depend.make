# Empty dependencies file for vpic_gpusim.
# This may be replaced when dependencies are built.
