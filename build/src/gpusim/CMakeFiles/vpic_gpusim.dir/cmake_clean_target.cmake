file(REMOVE_RECURSE
  "libvpic_gpusim.a"
)
