file(REMOVE_RECURSE
  "CMakeFiles/vpic_gpusim.dir/device.cpp.o"
  "CMakeFiles/vpic_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/vpic_gpusim.dir/push_model.cpp.o"
  "CMakeFiles/vpic_gpusim.dir/push_model.cpp.o.d"
  "CMakeFiles/vpic_gpusim.dir/scaling.cpp.o"
  "CMakeFiles/vpic_gpusim.dir/scaling.cpp.o.d"
  "libvpic_gpusim.a"
  "libvpic_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
