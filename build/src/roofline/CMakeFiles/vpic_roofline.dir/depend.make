# Empty dependencies file for vpic_roofline.
# This may be replaced when dependencies are built.
