file(REMOVE_RECURSE
  "libvpic_roofline.a"
)
