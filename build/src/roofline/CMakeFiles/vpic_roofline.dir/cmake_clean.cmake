file(REMOVE_RECURSE
  "CMakeFiles/vpic_roofline.dir/roofline.cpp.o"
  "CMakeFiles/vpic_roofline.dir/roofline.cpp.o.d"
  "libvpic_roofline.a"
  "libvpic_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
