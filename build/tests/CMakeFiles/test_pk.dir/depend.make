# Empty dependencies file for test_pk.
# This may be replaced when dependencies are built.
