file(REMOVE_RECURSE
  "CMakeFiles/test_pk.dir/test_pk.cpp.o"
  "CMakeFiles/test_pk.dir/test_pk.cpp.o.d"
  "test_pk"
  "test_pk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
