# Empty compiler generated dependencies file for test_core_physics.
# This may be replaced when dependencies are built.
