file(REMOVE_RECURSE
  "CMakeFiles/test_core_physics.dir/test_core_physics.cpp.o"
  "CMakeFiles/test_core_physics.dir/test_core_physics.cpp.o.d"
  "test_core_physics"
  "test_core_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
