# Empty dependencies file for test_v4.
# This may be replaced when dependencies are built.
