file(REMOVE_RECURSE
  "CMakeFiles/test_v4.dir/test_v4.cpp.o"
  "CMakeFiles/test_v4.dir/test_v4.cpp.o.d"
  "test_v4"
  "test_v4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
