# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_pk]=] "/root/repo/build/tests/test_pk")
set_tests_properties([=[test_pk]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_simd]=] "/root/repo/build/tests/test_simd")
set_tests_properties([=[test_simd]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_v4]=] "/root/repo/build/tests/test_v4")
set_tests_properties([=[test_v4]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_sort]=] "/root/repo/build/tests/test_sort")
set_tests_properties([=[test_sort]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_minimpi]=] "/root/repo/build/tests/test_minimpi")
set_tests_properties([=[test_minimpi]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_gpusim]=] "/root/repo/build/tests/test_gpusim")
set_tests_properties([=[test_gpusim]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_core_physics]=] "/root/repo/build/tests/test_core_physics")
set_tests_properties([=[test_core_physics]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_integration]=] "/root/repo/build/tests/test_integration")
set_tests_properties([=[test_integration]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_domain]=] "/root/repo/build/tests/test_domain")
set_tests_properties([=[test_domain]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_gs]=] "/root/repo/build/tests/test_gs")
set_tests_properties([=[test_gs]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_kernels]=] "/root/repo/build/tests/test_kernels")
set_tests_properties([=[test_kernels]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_roofline]=] "/root/repo/build/tests/test_roofline")
set_tests_properties([=[test_roofline]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_diagnostics]=] "/root/repo/build/tests/test_diagnostics")
set_tests_properties([=[test_diagnostics]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_property]=] "/root/repo/build/tests/test_property")
set_tests_properties([=[test_property]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;22;vpic_add_test;/root/repo/tests/CMakeLists.txt;0;")
