# Empty compiler generated dependencies file for weibel.
# This may be replaced when dependencies are built.
