file(REMOVE_RECURSE
  "CMakeFiles/weibel.dir/weibel.cpp.o"
  "CMakeFiles/weibel.dir/weibel.cpp.o.d"
  "weibel"
  "weibel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weibel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
