file(REMOVE_RECURSE
  "CMakeFiles/sort_explorer.dir/sort_explorer.cpp.o"
  "CMakeFiles/sort_explorer.dir/sort_explorer.cpp.o.d"
  "sort_explorer"
  "sort_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
