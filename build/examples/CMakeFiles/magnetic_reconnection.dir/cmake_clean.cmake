file(REMOVE_RECURSE
  "CMakeFiles/magnetic_reconnection.dir/magnetic_reconnection.cpp.o"
  "CMakeFiles/magnetic_reconnection.dir/magnetic_reconnection.cpp.o.d"
  "magnetic_reconnection"
  "magnetic_reconnection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magnetic_reconnection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
