# Empty dependencies file for magnetic_reconnection.
# This may be replaced when dependencies are built.
