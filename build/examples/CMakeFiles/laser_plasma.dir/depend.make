# Empty dependencies file for laser_plasma.
# This may be replaced when dependencies are built.
