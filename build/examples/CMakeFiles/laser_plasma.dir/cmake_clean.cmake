file(REMOVE_RECURSE
  "CMakeFiles/laser_plasma.dir/laser_plasma.cpp.o"
  "CMakeFiles/laser_plasma.dir/laser_plasma.cpp.o.d"
  "laser_plasma"
  "laser_plasma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laser_plasma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
