# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "10")
set_tests_properties([=[example_quickstart]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_laser_plasma]=] "/root/repo/build/examples/laser_plasma" "guided" "10")
set_tests_properties([=[example_laser_plasma]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_reconnection]=] "/root/repo/build/examples/magnetic_reconnection" "10")
set_tests_properties([=[example_reconnection]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_weibel]=] "/root/repo/build/examples/weibel" "20")
set_tests_properties([=[example_weibel]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sort_explorer]=] "/root/repo/build/examples/sort_explorer" "5000" "64" "8")
set_tests_properties([=[example_sort_explorer]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed]=] "/root/repo/build/examples/distributed" "2" "10")
set_tests_properties([=[example_distributed]=] PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
