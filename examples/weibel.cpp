// weibel — counter-streaming electron beams driving the Weibel
// filamentation instability: magnetic field grows exponentially from shot
// noise until the beams filament. A classic PIC validation problem; the
// printed growth curve should show orders-of-magnitude B-energy growth
// followed by saturation.
//
//   ./weibel [steps]
//   ./weibel --check [steps]   # physics regression mode
//
// With --check the deck runs as a ctest physics regression: total energy
// (fields + particles) must be conserved to a relative drift bound and
// the field energy must grow well clear of the shot-noise seed (the
// instability must actually develop); either failure exits nonzero.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/core.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();
  bool check = false;
  int steps = 240;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0)
      check = true;
    else
      steps = std::atoi(argv[i]);
  }

  core::decks::WeibelParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.ppc = 16;
  p.u_beam = 0.4f;
  p.strategy = core::VectorStrategy::Guided;
  auto sim = core::decks::make_weibel(p);
  if (check) sim.config().energy_interval = 5;

  std::printf("Weibel deck: +-%.1fc beams, %d ppc, %dx%dx%d cells\n",
              p.u_beam, p.ppc, p.nx, p.ny, p.nz);
  std::printf("%8s %16s %16s\n", "step", "field energy", "beam KE");

  sim.run(1);  // one step seeds the field from particle shot noise
  const double seed_field = sim.energies().field;
  double peak_field = seed_field;
  for (int burst = 0; burst < steps; burst += 20) {
    const auto e = sim.energies();
    peak_field = std::max(peak_field, e.field);
    std::printf("%8lld %16.6e %16.6e\n",
                static_cast<long long>(sim.step_count()), e.field,
                e.species[0]);
    sim.run(std::min(20, steps - burst));
  }
  peak_field = std::max(peak_field, sim.energies().field);

  const bool developed = peak_field > 50 * seed_field;
  std::printf("\nfield energy grew %.2e -> %.2e (%.0fx): filamentation %s\n",
              seed_field, peak_field, peak_field / seed_field,
              developed ? "developed" : "not yet visible");

  if (check) {
    // Physics regression. The drift bound is looser than reconnection's
    // because cold 0.4c beams on this coarse grid self-heat numerically
    // (~9% over 160 steps) — the bound still trips immediately on a
    // broken deposit, push, or field solve, which blow up or zero the
    // energy rather than drift gently. The growth gate catches decks
    // that go quiet (e.g. beams not actually counter-streaming): the
    // field must grow well clear of the step-1 shot-noise seed.
    constexpr double kMaxDrift = 0.15;
    constexpr double kMinGrowth = 5.0;
    const double growth = peak_field / seed_field;
    const double drift = sim.energy_history().max_relative_drift();
    std::printf("check: relative energy drift %.3e (bound %.1e), growth "
                "%.0fx (need %.0fx)\n",
                drift, kMaxDrift, growth, kMinGrowth);
    if (!(drift < kMaxDrift) || !(growth > kMinGrowth)) {
      std::fprintf(stderr, "physics regression FAILED\n");
      return 1;
    }
    std::printf("physics regression passed\n");
  }
  return 0;
}
