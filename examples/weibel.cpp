// weibel — counter-streaming electron beams driving the Weibel
// filamentation instability: magnetic field grows exponentially from shot
// noise until the beams filament. A classic PIC validation problem; the
// printed growth curve should show orders-of-magnitude B-energy growth
// followed by saturation.
//
//   ./weibel [steps]
#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();
  const int steps = argc > 1 ? std::atoi(argv[1]) : 240;

  core::decks::WeibelParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.ppc = 16;
  p.u_beam = 0.4f;
  p.strategy = core::VectorStrategy::Guided;
  auto sim = core::decks::make_weibel(p);

  std::printf("Weibel deck: +-%.1fc beams, %d ppc, %dx%dx%d cells\n",
              p.u_beam, p.ppc, p.nx, p.ny, p.nz);
  std::printf("%8s %16s %16s\n", "step", "field energy", "beam KE");

  sim.run(1);  // one step seeds the field from particle shot noise
  const double seed_field = sim.energies().field;
  double peak_field = seed_field;
  for (int burst = 0; burst < steps; burst += 20) {
    const auto e = sim.energies();
    peak_field = std::max(peak_field, e.field);
    std::printf("%8lld %16.6e %16.6e\n",
                static_cast<long long>(sim.step_count()), e.field,
                e.species[0]);
    sim.run(std::min(20, steps - burst));
  }
  peak_field = std::max(peak_field, sim.energies().field);

  std::printf("\nfield energy grew %.2e -> %.2e (%.0fx): filamentation %s\n",
              seed_field, peak_field, peak_field / seed_field,
              peak_field > 50 * seed_field ? "developed" : "not yet visible");
  return 0;
}
