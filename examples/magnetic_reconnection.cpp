// magnetic_reconnection — Harris current sheet with a GEM-challenge island
// perturbation: the flagship VPIC science problem (paper Sections 2.1/6).
// Tracks the reconnected flux proxy (peak |Bz|) and the energy exchange
// between fields and particles as the island grows.
//
//   ./magnetic_reconnection [steps]
//   ./magnetic_reconnection --check [steps]   # physics regression mode
//
// With --check the deck runs as a ctest physics regression: total energy
// (fields + particles) must be conserved to a relative drift bound, the
// island seed must actually grow, AND the island growth *rate* — the
// per-step exponential rate of the reconnected-flux proxy max|Bz|,
// fitted by least squares over the sampled ln(max|Bz|) history — must
// land inside an expected band. The rate is the reconnection-physics
// regression: a broken Ohm's-law term or field solve can still "grow"
// while growing at a visibly wrong rate. Any failure exits nonzero.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/core.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();
  bool check = false;
  int steps = 150;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0)
      check = true;
    else
      steps = std::atoi(argv[i]);
  }

  core::decks::ReconnectionParams p;
  p.nx = 32;
  p.ny = 8;
  p.nz = 32;
  p.ppc = 8;
  p.strategy = core::VectorStrategy::Guided;
  auto sim = core::decks::make_reconnection(p);
  if (check) sim.config().energy_interval = 5;

  std::printf(
      "Harris sheet: %dx%dx%d cells, B0=%.2f, sheet half-width %.1f cells, "
      "island seed %.0f%%\n",
      p.nx, p.ny, p.nz, p.b0, p.sheet_half_width, 100 * p.perturbation);
  std::printf("%8s %12s %14s %14s %14s\n", "step", "max|Bz|", "field E",
              "electron KE", "ion KE");

  const auto& g = sim.grid();
  auto max_bz = [&] {
    float m = 0;
    for (int iz = 1; iz <= g.nz; ++iz)
      for (int iy = 1; iy <= g.ny; ++iy)
        for (int ix = 1; ix <= g.nx; ++ix)
          m = std::max(m, std::abs(sim.fields().bz(g.voxel(ix, iy, iz))));
    return m;
  };

  std::vector<double> sample_step, sample_lnbz;
  for (int burst = 0; burst <= steps; burst += 25) {
    const auto e = sim.energies();
    const float bz = max_bz();
    std::printf("%8lld %12.4e %14.6e %14.6e %14.6e\n",
                static_cast<long long>(sim.step_count()), bz, e.field,
                e.species[0], e.species[1]);
    // Step 0 is excluded from the rate fit: the analytic island seed has
    // not yet relaxed onto the Yee grid, so the 0→25 jump is a
    // discretization transient, not reconnection.
    if (bz > 0 && sim.step_count() > 0) {
      sample_step.push_back(static_cast<double>(sim.step_count()));
      sample_lnbz.push_back(std::log(static_cast<double>(bz)));
    }
    if (burst < steps) sim.run(std::min(25, steps - burst));
  }

  const bool growing = max_bz() > 2.0f * p.perturbation * p.b0;
  std::printf("\nreconnection proxy: max|Bz| grew from the %.1e seed — the "
              "island is %s\n",
              static_cast<double>(p.perturbation * p.b0),
              growing ? "growing" : "static");

  if (check) {
    // Physics regression: the explicit leapfrog/Yee scheme conserves
    // total energy to discretization error. The bound is loose enough
    // for float fields over a few hundred steps yet tight enough that a
    // broken deposit, push, or field solve trips it immediately.
    constexpr double kMaxDrift = 0.05;
    const double drift = sim.energy_history().max_relative_drift();
    std::printf("check: relative energy drift %.3e (bound %.1e), island %s\n",
                drift, kMaxDrift, growing ? "growing" : "STATIC");

    // Reconnection-rate regression: least-squares slope of ln(max|Bz|)
    // against the step number — the per-step exponential growth rate of
    // the island's reconnected-flux proxy during the seeded linear phase.
    // The band brackets the rate this deck produces at these parameters
    // (calibrated ~3.5e-3/step over steps 25..100, with ~3x margin each
    // way for the float-atomic deposit ordering noise across thread
    // counts); a push, deposit, or field-solve bug that leaves the island
    // "growing" at the wrong speed lands outside it.
    constexpr double kRateLo = 1.0e-3, kRateHi = 1.0e-2;
    double rate = 0;
    if (sample_step.size() >= 2) {
      const double n = static_cast<double>(sample_step.size());
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t k = 0; k < sample_step.size(); ++k) {
        sx += sample_step[k];
        sy += sample_lnbz[k];
        sxx += sample_step[k] * sample_step[k];
        sxy += sample_step[k] * sample_lnbz[k];
      }
      rate = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    }
    const bool rate_ok = rate > kRateLo && rate < kRateHi;
    std::printf("check: island growth rate %.3e /step (band %.1e..%.1e) %s\n",
                rate, kRateLo, kRateHi, rate_ok ? "ok" : "OUT OF BAND");

    if (!(drift < kMaxDrift) || !growing || !rate_ok) {
      std::fprintf(stderr, "physics regression FAILED\n");
      return 1;
    }
    std::printf("physics regression passed\n");
  }
  return 0;
}
