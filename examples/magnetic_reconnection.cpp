// magnetic_reconnection — Harris current sheet with a GEM-challenge island
// perturbation: the flagship VPIC science problem (paper Sections 2.1/6).
// Tracks the reconnected flux proxy (peak |Bz|) and the energy exchange
// between fields and particles as the island grows.
//
//   ./magnetic_reconnection [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();
  const int steps = argc > 1 ? std::atoi(argv[1]) : 150;

  core::decks::ReconnectionParams p;
  p.nx = 32;
  p.ny = 8;
  p.nz = 32;
  p.ppc = 8;
  p.strategy = core::VectorStrategy::Guided;
  auto sim = core::decks::make_reconnection(p);

  std::printf(
      "Harris sheet: %dx%dx%d cells, B0=%.2f, sheet half-width %.1f cells, "
      "island seed %.0f%%\n",
      p.nx, p.ny, p.nz, p.b0, p.sheet_half_width, 100 * p.perturbation);
  std::printf("%8s %12s %14s %14s %14s\n", "step", "max|Bz|", "field E",
              "electron KE", "ion KE");

  const auto& g = sim.grid();
  auto max_bz = [&] {
    float m = 0;
    for (int iz = 1; iz <= g.nz; ++iz)
      for (int iy = 1; iy <= g.ny; ++iy)
        for (int ix = 1; ix <= g.nx; ++ix)
          m = std::max(m, std::abs(sim.fields().bz(g.voxel(ix, iy, iz))));
    return m;
  };

  for (int burst = 0; burst <= steps; burst += 25) {
    const auto e = sim.energies();
    std::printf("%8lld %12.4e %14.6e %14.6e %14.6e\n",
                static_cast<long long>(sim.step_count()), max_bz(), e.field,
                e.species[0], e.species[1]);
    if (burst < steps) sim.run(std::min(25, steps - burst));
  }

  std::printf("\nreconnection proxy: max|Bz| grew from the %.1e seed — the "
              "island is %s\n",
              static_cast<double>(p.perturbation * p.b0),
              max_bz() > 2.0f * p.perturbation * p.b0 ? "growing" : "static");
  return 0;
}
