// distributed — multi-rank PIC run over the in-process MPI substrate:
// a drifting thermal plasma decomposed into z-slabs, with halo exchange
// and particle migration between ranks every step. Demonstrates the
// communication pattern behind the paper's scalability results and shows
// the rank-count invariance of the physics.
//
//   ./distributed [nranks] [steps]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/core.hpp"
#include "minimpi/minimpi.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  core::DomainConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz = 16;
  cfg.lx = 8;
  cfg.ly = 8;
  cfg.lz = 16;
  cfg.strategy = core::VectorStrategy::Guided;
  if (cfg.nz % nranks != 0) {
    std::fprintf(stderr, "nranks must divide nz=%d\n", cfg.nz);
    return 1;
  }

  std::printf("distributed run: %dx%dx%d global grid over %d z-slabs\n",
              cfg.nx, cfg.ny, cfg.nz, nranks);

  std::mutex print_mutex;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    const auto e = sim.add_species("electron", -1.0f, 1.0f, 1 << 16);
    const auto ion = sim.add_species("ion", +1.0f, 100.0f, 1 << 16);
    // A z-drift guarantees migration across slab boundaries; the ion
    // background keeps the plasma quasi-neutral.
    sim.load_uniform_plasma(e, 8, 0.1f, 0.0f, 0.0f, 0.25f);
    sim.load_uniform_plasma(ion, 8, 0.01f);

    for (int burst = 0; burst <= steps; burst += 10) {
      const auto energy = sim.energies();
      const auto np = sim.global_np(e);
      if (comm.rank() == 0) {
        std::lock_guard lk(print_mutex);
        std::printf(
            "  step %3d: total E %.6e, global particles %lld, rank-0 "
            "local %lld, exchanged so far %lld\n",
            burst, energy.total(), static_cast<long long>(np),
            static_cast<long long>(sim.species(e).np),
            static_cast<long long>(sim.exchanged_particles()));
      }
      comm.barrier();
      if (burst < steps) sim.run(10);
    }

    // Per-rank summary, serialized through a gather.
    const std::int64_t mine = sim.species(e).np;
    const auto all = comm.gather(&mine, 1, 0);
    if (comm.rank() == 0) {
      std::lock_guard lk(print_mutex);
      std::printf("final local particle counts:");
      for (auto c : all) std::printf(" %lld", static_cast<long long>(c));
      std::printf("\n");
    }
  });
  return 0;
}
