// sort_explorer — interactive-style demo of the paper's sorting
// algorithms: generates a small key multiset, applies standard, strided
// (Algorithm 1) and tiled-strided (Algorithm 2) sorts, and prints the
// resulting orders next to each other (a textual Figure 2), followed by a
// larger run verifying the order predicates.
//
//   ./sort_explorer [n] [unique] [tile]
#include <cstdio>
#include <cstdlib>

#include "core/rng.hpp"
#include "pk/pk.hpp"
#include "sort/order_checks.hpp"
#include "sort/sorters.hpp"

namespace {

using namespace vpic;
using pk::index_t;

void show(const char* label, const pk::View<std::uint32_t, 1>& keys) {
  std::printf("  %-14s [", label);
  for (index_t i = 0; i < keys.size(); ++i)
    std::printf("%s%u", i ? " " : "", keys(i));
  std::printf("]\n");
}

pk::View<std::uint32_t, 1> demo_keys() {
  // The multiset from the paper's Figure 2: three 0s, two 1s, three 2s.
  const std::uint32_t kv[8] = {2, 0, 1, 2, 0, 2, 1, 0};
  pk::View<std::uint32_t, 1> keys("keys", 8);
  for (int i = 0; i < 8; ++i) keys(i) = kv[i];
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  pk::initialize();
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 100'000;
  const std::uint32_t unique =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 512;
  const std::uint32_t tile =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;

  std::printf("== the paper's Figure 2, textually ==\n");
  {
    auto keys = demo_keys();
    show("input", keys);
    for (auto order : {sort::SortOrder::Standard, sort::SortOrder::Strided,
                       sort::SortOrder::TiledStrided}) {
      auto k = demo_keys();
      pk::View<std::uint32_t, 1> vals("v", k.size());
      sort::sort_pairs(order, k, vals, 2u);
      show(sort::to_string(order), k);
    }
  }

  std::printf(
      "\n== larger run: n=%lld keys over %u values, tile=%u ==\n",
      static_cast<long long>(n), unique, tile);
  for (auto order : {sort::SortOrder::Standard, sort::SortOrder::Strided,
                     sort::SortOrder::TiledStrided}) {
    pk::View<std::uint32_t, 1> keys("keys", n), vals("vals", n);
    pk::parallel_for(n, [&](index_t i) {
      keys(i) = static_cast<std::uint32_t>(
          vpic::core::hash64(static_cast<std::uint64_t>(i)) % unique);
      vals(i) = static_cast<std::uint32_t>(i);
    });
    pk::Timer t;
    sort::sort_pairs(order, keys, vals, tile);
    const double ms = t.seconds() * 1e3;
    bool ok = true;
    switch (order) {
      case sort::SortOrder::Standard:
        ok = sort::is_sorted_ascending(keys);
        break;
      case sort::SortOrder::Strided:
        ok = sort::is_strided_order(keys);
        break;
      case sort::SortOrder::TiledStrided:
        ok = sort::is_tiled_strided_order(keys, tile);
        break;
      default:
        break;
    }
    std::printf("  %-14s %8.2f ms   order invariant: %s\n",
                sort::to_string(order), ms, ok ? "holds" : "VIOLATED");
  }
  return 0;
}
