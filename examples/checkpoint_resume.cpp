// checkpoint_resume — checkpoint/restart across process boundaries
// (docs/CHECKPOINT.md): run an LPI deck with a periodic checkpoint ring,
// kill the process, restart the binary, resume from the newest valid
// generation, and land bit-identical to a run that never stopped.
//
//   ./checkpoint_resume run       <base> <total_steps> [every]
//   ./checkpoint_resume resume    <base> <total_steps>
//   ./checkpoint_resume roundtrip <base> <total_steps> [every]
//
// `run` steps a fresh deck to total_steps, checkpointing every `every`
// steps (0 disables). `resume` restores a fresh process from the ring and
// continues to total_steps. Both print the energy history at full double
// precision on stdout (diagnostics to stderr), so
//
//   run ref 60 0 > a.txt;  run ck 30 10;  resume ck 60 > b.txt;  diff a b
//
// is the kill-and-resume acceptance check CI runs. `roundtrip` does the
// same comparison in-process and exits nonzero on any divergence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ckpt/ckpt.hpp"
#include "core/core.hpp"

namespace core = vpic::core;
namespace ckpt = vpic::ckpt;
namespace pk = vpic::pk;

namespace {

core::Simulation make_deck() {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

/// Energy history rows at full double precision — the diffable record two
/// processes (or two in-process runs) are compared on.
void print_history(core::Simulation& sim) {
  const auto& h = sim.energy_history();
  for (std::size_t i = 0; i < h.size(); ++i) {
    std::printf("%lld,%.17g", static_cast<long long>(h.step(i)), h.field(i));
    for (std::size_t s = 0; s < h.species_count(i); ++s)
      std::printf(",%.17g", h.species_ke(i, s));
    std::printf("\n");
  }
  const auto e = sim.energies();
  std::printf("final,%lld,%.17g\n", static_cast<long long>(sim.step_count()),
              e.total());
}

/// Full-precision history digest for the in-process roundtrip compare
/// (to_csv rounds to %.9e, too coarse to witness bit-identity).
std::string history_string(core::Simulation& sim) {
  const auto& h = sim.energy_history();
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < h.size(); ++i) {
    out += std::to_string(h.step(i));
    std::snprintf(buf, sizeof(buf), ",%.17g", h.field(i));
    out += buf;
    for (std::size_t s = 0; s < h.species_count(i); ++s) {
      std::snprintf(buf, sizeof(buf), ",%.17g", h.species_ke(i, s));
      out += buf;
    }
    out += "\n";
  }
  return out + std::to_string(sim.step_count());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s run|resume|roundtrip <base> <total_steps> "
                 "[every]\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string base = argv[2];
  const int total_steps = std::atoi(argv[3]);
  const int every = argc > 4 ? std::atoi(argv[4]) : 10;

  // One kernel thread: cross-process bit-identity requires deterministic
  // current deposits (see docs/CHECKPOINT.md).
  pk::initialize(1);

  if (mode == "run") {
    auto sim = make_deck();
    sim.config().checkpoint_every = every;
    sim.config().checkpoint_path = every > 0 ? base : "";
    sim.run(total_steps);
    std::fprintf(stderr, "ran %d steps, %lld checkpoints at '%s'\n",
                 total_steps, static_cast<long long>(sim.checkpoints_written()),
                 base.c_str());
    print_history(sim);
    return 0;
  }

  if (mode == "resume") {
    auto sim = make_deck();
    const std::string used = sim.restore_latest(base);
    std::fprintf(stderr, "resumed from '%s' at step %lld\n", used.c_str(),
                 static_cast<long long>(sim.step_count()));
    const int remaining = total_steps - static_cast<int>(sim.step_count());
    if (remaining < 0) {
      std::fprintf(stderr, "checkpoint is past step %d\n", total_steps);
      return 2;
    }
    sim.run(remaining);
    print_history(sim);
    return 0;
  }

  if (mode == "roundtrip") {
    // Drop generations left by a previous invocation of the same base.
    ckpt::GenerationRing stale(base, 1);
    for (std::uint64_t g : stale.generations())
      std::remove(stale.path_for(g).c_str());

    // Reference: total_steps uninterrupted.
    auto ref = make_deck();
    ref.run(total_steps);

    // Interrupted run to the halfway point with a checkpoint ring...
    const int half = total_steps / 2;
    {
      auto sim = make_deck();
      sim.config().checkpoint_every = every;
      sim.config().checkpoint_path = base;
      sim.run(half);
    }  // ...process "dies" here (simulation destroyed)...

    // ...and a fresh simulation resumes from the newest generation.
    auto resumed = make_deck();
    const std::string used = resumed.restore_latest(base);
    std::fprintf(stderr, "roundtrip: resumed from '%s' at step %lld\n",
                 used.c_str(), static_cast<long long>(resumed.step_count()));
    resumed.run(total_steps - static_cast<int>(resumed.step_count()));

    if (history_string(resumed) != history_string(ref)) {
      std::fprintf(stderr, "roundtrip: resumed run DIVERGED from the "
                           "uninterrupted reference\n");
      return 1;
    }
    std::printf("roundtrip OK: %d steps, resume from step %lld "
                "bit-identical energies\n",
                total_steps,
                static_cast<long long>(ckpt::FileReader(used).step()));
    return 0;
  }

  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
