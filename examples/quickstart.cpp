// quickstart — smallest complete use of the public API: build a uniform
// thermal plasma, pick a vectorization strategy and a particle sorting
// order, run a few hundred steps, watch the energy balance.
//
//   ./quickstart [steps]
#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 100;

  pk::initialize();

  // 16^3 periodic box, cells of one skin depth, Courant-limited dt.
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(16, 16, 16, 16.0f, 16.0f, 16.0f, 0.0f);
  cfg.grid.dt = core::Grid::courant_dt(1.0f, 1.0f, 1.0f, 0.7f);
  cfg.strategy = core::VectorStrategy::Guided;   // the paper's sweet spot
  cfg.sort_order = vpic::sort::SortOrder::Standard;  // CPU-optimal order
  cfg.sort_interval = 20;

  core::Simulation sim(cfg);
  const auto electrons = sim.add_species("electron", -1.0f, 1.0f, 80'000);
  const auto ions = sim.add_species("ion", +1.0f, 1836.0f, 80'000);
  sim.load_uniform_plasma(electrons, /*ppc=*/16, /*uth=*/0.1f);
  sim.load_uniform_plasma(ions, /*ppc=*/16, /*uth=*/0.002f);

  std::printf("quickstart: %lld electrons + %lld ions on a %dx%dx%d grid\n",
              static_cast<long long>(sim.species(electrons).np),
              static_cast<long long>(sim.species(ions).np), cfg.grid.nx,
              cfg.grid.ny, cfg.grid.nz);
  std::printf("%8s %14s %14s %14s\n", "step", "field E", "kinetic E",
              "total E");

  const auto report = [&] {
    const auto e = sim.energies();
    double kin = 0;
    for (double k : e.species) kin += k;
    std::printf("%8lld %14.6e %14.6e %14.6e\n",
                static_cast<long long>(sim.step_count()), e.field, kin,
                e.total());
  };

  report();
  for (int burst = 0; burst < steps; burst += 20) {
    sim.run(std::min(20, steps - burst));
    report();
  }

  std::printf("push kernel time: %.3f s (%s strategy)\n", sim.push_seconds(),
              core::to_string(cfg.strategy));
  return 0;
}
