// laser_plasma — the paper's benchmark problem: a laser driven into an
// under-dense plasma slab (laser-plasma instability deck). Prints the
// field-energy history as the wave propagates into the slab and the push
// kernel throughput for the selected vectorization strategy.
//
//   ./laser_plasma [strategy: auto|guided|manual|adhoc] [steps]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/core.hpp"

namespace {

vpic::core::VectorStrategy parse_strategy(const char* s) {
  using vpic::core::VectorStrategy;
  if (std::strcmp(s, "guided") == 0) return VectorStrategy::Guided;
  if (std::strcmp(s, "manual") == 0) return VectorStrategy::Manual;
  if (std::strcmp(s, "adhoc") == 0) return VectorStrategy::AdHoc;
  return VectorStrategy::Auto;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpic;
  pk::initialize();

  core::decks::LpiParams p;
  p.nx = 48;
  p.ny = 16;
  p.nz = 16;
  p.ppc = 16;
  p.strategy = argc > 1 ? parse_strategy(argv[1])
                        : core::VectorStrategy::Guided;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  auto sim = core::decks::make_lpi(p);
  std::printf(
      "laser-plasma instability deck: %dx%dx%d cells, slab x in [%.0f%%, "
      "%.0f%%], %d ppc, laser a0=%.2f omega=%.2f, strategy=%s\n",
      p.nx, p.ny, p.nz, 100 * p.slab_begin, 100 * p.slab_end, p.ppc,
      p.laser_amplitude, p.laser_omega, core::to_string(p.strategy));

  std::printf("%8s %14s %14s %14s\n", "step", "field E", "electron KE",
              "ion KE");
  for (int burst = 0; burst < steps; burst += 25) {
    sim.run(std::min(25, steps - burst));
    const auto e = sim.energies();
    std::printf("%8lld %14.6e %14.6e %14.6e\n",
                static_cast<long long>(sim.step_count()), e.field,
                e.species[0], e.species[1]);
  }

  const double pushed = static_cast<double>(sim.species(0).np +
                                            sim.species(1).np) *
                        steps;
  std::printf("\npush throughput: %.2f Mparticles/s (%s)\n",
              pushed / sim.push_seconds() / 1e6,
              core::to_string(p.strategy));
  return 0;
}
