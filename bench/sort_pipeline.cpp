// bench/sort_pipeline.cpp — microbench for the zero-allocation particle
// sort pipeline. Two comparisons, swept over particle count and cell count
// (the counting sort's key bound):
//
//  * kernel:   radix_sort_by_key vs counting_sort_by_key on the same
//              random (key, value) pairs — the backend-level win.
//  * pipeline: the legacy sort_particles (per-call View allocations,
//              radix argsort, gather + copy-back) vs the workspace-backed
//              ping-pong pipeline — the end-to-end win the Simulation
//              driver sees, plus the steady-state allocation count
//              (pk::view_alloc_count deltas; 0 after warm-up).
//
// Emits one JSON record per measurement (bench_common.hpp) alongside the
// tables. Acceptance target: counting path >= 1.5x the radix path for
// nv <= 2^16.
#include <algorithm>
#include <bit>
#include <cinttypes>

#include "bench_common.hpp"
#include "core/particle.hpp"
#include "core/sort_particles.hpp"
#include "pk/pk.hpp"
#include "sort/counting.hpp"
#include "sort/radix.hpp"
#include "sort/sorters.hpp"

namespace {

using namespace vpic;
using pk::index_t;

std::uint64_t rng_state = 0x1234abcdu;
std::uint64_t next_rand() {
  rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
  return rng_state >> 33;
}

core::Species make_species(index_t n, index_t nv) {
  core::Species sp("bench", -1.0f, 1.0f, n);
  for (index_t i = 0; i < n; ++i) {
    core::Particle p{};
    p.i = static_cast<std::int32_t>(next_rand() % static_cast<std::uint64_t>(nv));
    p.dx = p.dy = p.dz = 0.0f;
    p.ux = static_cast<float>(i);
    p.w = 1.0f;
    sp.p(i) = p;
  }
  sp.np = n;
  return sp;
}

/// The pre-workspace sort_particles: four fresh Views per call, radix
/// argsort, gather, full copy-back. Kept here as the baseline the tentpole
/// replaces.
double legacy_sort_particles(core::Species& sp, sort::SortOrder order,
                             std::uint32_t tile_sz) {
  pk::Timer t;
  pk::View<std::uint32_t, 1> keys = sp.cell_keys();
  pk::View<index_t, 1> perm("sort_perm", sp.np);
  pk::parallel_for(sp.np, [&](index_t i) { perm(i) = i; });
  switch (order) {
    case sort::SortOrder::Standard:
      sort::radix_sort_by_key(keys, perm);
      break;
    case sort::SortOrder::Strided: {
      pk::View<std::uint32_t, 1> nk = sort::make_strided_keys(keys);
      sort::radix_sort_by_key(nk, perm);
      break;
    }
    case sort::SortOrder::TiledStrided: {
      pk::View<std::uint32_t, 1> nk =
          sort::make_tiled_strided_keys(keys, tile_sz);
      sort::radix_sort_by_key(nk, perm);
      break;
    }
    default:
      break;
  }
  pk::View<core::Particle, 1> reordered("particles_sorted", sp.np);
  pk::parallel_for(sp.np, [&](index_t i) { reordered(i) = sp.p(perm(i)); });
  pk::parallel_for(sp.np, [&](index_t i) { sp.p(i) = reordered(i); });
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 21);
  const int reps =
      std::max(1, static_cast<int>(bench::flag(argc, argv, "reps", 3)));
  const int nthreads = vpic::pk::DefaultExecSpace::concurrency();

  std::printf("== Sort pipeline: counting vs radix, n=%lld, threads=%d ==\n\n",
              static_cast<long long>(n), nthreads);

  // ------------------------------------------------------------------
  // Kernel-level: sort_by_key backends on random bounded keys.
  // ------------------------------------------------------------------
  std::printf("-- sort_by_key backends (keys uniform in [0, nv)) --\n");
  bench::Table kt({"nv", "radix (ms)", "counting (ms)", "speedup"});
  for (const index_t nv :
       {index_t{1} << 12, index_t{1} << 16, index_t{1} << 20}) {
    if (nv > n) continue;
    bench::Timing radix_t, cnt_t;
    for (int r = 0; r < reps; ++r) {
      pk::View<std::uint32_t, 1> keys("k", n), vals("v", n);
      for (index_t i = 0; i < n; ++i) {
        keys(i) = static_cast<std::uint32_t>(next_rand() %
                                             static_cast<std::uint64_t>(nv));
        vals(i) = static_cast<std::uint32_t>(i);
      }
      pk::View<std::uint32_t, 1> keys2("k2", n), vals2("v2", n);
      pk::deep_copy(keys2, keys);
      pk::deep_copy(vals2, vals);
      {
        pk::Timer t;
        sort::radix_sort_by_key(keys, vals);
        radix_t.add_sample(t.seconds());
      }
      {
        pk::Timer t;
        sort::counting_sort_by_key(keys2, vals2, nv);
        cnt_t.add_sample(t.seconds());
      }
    }
    const double speedup = radix_t.min_s / cnt_t.min_s;
    kt.row({"2^" + std::to_string(std::bit_width(static_cast<std::uint64_t>(nv)) - 1),
            bench::fmt("%.2f", radix_t.min_s * 1e3),
            bench::fmt("%.2f", cnt_t.min_s * 1e3), bench::fmt("%.2fx", speedup)});
    bench::Json("sort_pipeline")
        .field("mode", "kernel")
        .field("n", static_cast<std::int64_t>(n))
        .field("nv", static_cast<std::int64_t>(nv))
        .timing("radix", radix_t)
        .timing("counting", cnt_t)
        .field("speedup", speedup)
        .print();
  }
  kt.print();

  // ------------------------------------------------------------------
  // Pipeline-level: legacy (allocating, radix, copy-back) vs workspace
  // (counting scatter, ping-pong) sort_particles.
  // ------------------------------------------------------------------
  std::printf("\n-- sort_particles pipelines --\n");
  bench::Table pt({"order", "nv", "legacy radix (ms)", "counting+ws (ms)",
                   "speedup", "steady allocs"});
  for (const sort::SortOrder order :
       {sort::SortOrder::Standard, sort::SortOrder::Strided}) {
    for (const index_t nv : {index_t{1} << 12, index_t{1} << 16}) {
      if (nv > n) continue;
      core::Species legacy_sp = make_species(n, nv);
      core::Species ws_sp = make_species(n, nv);

      // Warm up the workspace path so all persistent buffers are sized.
      core::sort_particles(ws_sp, sort::SortOrder::Random, 0, 7, nv);
      core::sort_particles(ws_sp, order, 8, 0, nv);

      const std::int64_t allocs0 = pk::view_alloc_count().load();
      const std::int64_t grows0 = ws_sp.sort_ws.grow_count;
      // Each timed rep sorts a freshly disordered array: the prep lambda
      // re-shuffles (untimed) before the measured sort.
      const bench::Timing ws_t = bench::time_reps(
          reps, 0, [&] { core::sort_particles(ws_sp, order, 8, 0, nv); },
          [&](int r) {
            core::sort_particles(ws_sp, sort::SortOrder::Random, 0, 100 + r,
                                 nv);
          });
      const std::int64_t steady_allocs =
          pk::view_alloc_count().load() - allocs0;
      const std::int64_t steady_grows = ws_sp.sort_ws.grow_count - grows0;
      const bench::Timing legacy_t = bench::time_reps(
          reps, 0, [&] { legacy_sort_particles(legacy_sp, order, 8); },
          [&](int r) {
            core::sort_particles(legacy_sp, sort::SortOrder::Random, 0,
                                 100 + r, nv);
          });
      const double speedup = legacy_t.min_s / ws_t.min_s;
      pt.row({sort::to_string(order), std::to_string(nv),
              bench::fmt("%.2f", legacy_t.min_s * 1e3),
              bench::fmt("%.2f", ws_t.min_s * 1e3),
              bench::fmt("%.2fx", speedup), std::to_string(steady_allocs)});
      bench::Json("sort_pipeline")
          .field("mode", "pipeline")
          .field("order", sort::to_string(order))
          .field("n", static_cast<std::int64_t>(n))
          .field("nv", static_cast<std::int64_t>(nv))
          .timing("radix", legacy_t)
          .timing("counting", ws_t)
          .field("speedup", speedup)
          .field("steady_state_view_allocs", steady_allocs)
          .field("steady_state_workspace_grows", steady_grows)
          .print();
    }
  }
  pt.print();
  std::printf(
      "\nAcceptance: counting path >= 1.5x the radix path for nv <= 2^16,\n"
      "and 'steady allocs' (pk::View allocations across post-warm-up\n"
      "sorts, including the untimed re-shuffles) must be 0.\n");

  const std::string report = bench::emit_bench_json("sort_pipeline");
  if (!report.empty())
    std::printf("\nmachine-readable report: %s\n", report.c_str());
  return 0;
}
