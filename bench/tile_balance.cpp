// bench/tile_balance.cpp — tile-level work stealing vs static domain
// decomposition on a deliberately clumped deck (docs/TILES.md).
//
// The LPI deck's clump_factor concentrates particles (and therefore push
// cost) in the z-center cells while leaving the physical charge density
// uniform, so a static contiguous-tile partition hands one worker most of
// the work. Three measurements:
//
//  1. Bit-identity self-check: the tiled Deterministic mode must
//     reproduce the untiled Sequential step exactly (fields, particles,
//     energy series) on the clumped deck — the bench exits nonzero on
//     any divergence, like step_overlap's physics check.
//  2. Modeled makespans: per-tile task costs are *measured* serially
//     (Deterministic mode times every per-tile push phase), then replayed
//     deterministically through the two placement policies — a static
//     contiguous tile partition vs the stealing executor's LPT/greedy
//     placement — at several virtual worker counts. This is the repo's
//     modeled-metric idiom (cf. ext_batch_throughput): the schedule
//     quality is host-independent and reproducible on a 1-core CI box,
//     where real thread timings would measure the kernel scheduler, not
//     the balancer. The headline is speedup at 4 workers.
//  3. Real pool telemetry: the same deck runs through the Stealing
//     executor on a real StealPool to exercise the full path end-to-end
//     and record steal/idle counters and the measured tile imbalance.
//
//   ./tile_balance --nx=16 --ny=8 --nz=32 --ppc=8 --clump=8 --tiles=16
//   ./tile_balance --smoke          # CI-sized, no speedup threshold
//
// Emits BENCH_tile_balance.json (schema vpic-bench-v1) and self-validates
// it. Outside --smoke the bench exits nonzero if the 4-worker modeled
// speedup drops below 1.5x (the acceptance bar for the stealing balancer).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "core/decks.hpp"
#include "core/simulation.hpp"
#include "core/tiles.hpp"
#include "pk/pk.hpp"

namespace bench = vpic::bench;
namespace core = vpic::core;
namespace pk = vpic::pk;

namespace {

struct Params {
  int nx, ny, nz, ppc, tiles, steps, reps;
  float clump;
};

core::Simulation make_clumped(const Params& p) {
  core::decks::LpiParams lp;
  lp.nx = p.nx;
  lp.ny = p.ny;
  lp.nz = p.nz;
  lp.ppc = p.ppc;
  lp.clump_factor = p.clump;
  return core::decks::make_lpi(lp);
}

/// Fields + particles + energy series must match bit for bit between the
/// tiled Deterministic mode and the untiled Sequential step.
bool bitwise_equal(core::Simulation& a, core::Simulation& b) {
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  const pk::View<float, 1>* va[] = {&fa.ex, &fa.ey, &fa.ez, &fa.bx, &fa.by,
                                    &fa.bz, &fa.jx, &fa.jy, &fa.jz};
  const pk::View<float, 1>* vb[] = {&fb.ex, &fb.ey, &fb.ez, &fb.bx, &fb.by,
                                    &fb.bz, &fb.jx, &fb.jy, &fb.jz};
  for (int c = 0; c < 9; ++c)
    for (pk::index_t i = 0; i < va[c]->size(); ++i)
      if ((*va[c])(i) != (*vb[c])(i)) return false;
  if (a.num_species() != b.num_species()) return false;
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    if (sa.np != sb.np) return false;
    for (core::index_t i = 0; i < sa.np; ++i) {
      const auto pa = sa.p(i);
      const auto pb = sb.p(i);
      if (pa.dx != pb.dx || pa.dy != pb.dy || pa.dz != pb.dz ||
          pa.i != pb.i || pa.ux != pb.ux || pa.uy != pb.uy ||
          pa.uz != pb.uz || pa.w != pb.w)
        return false;
    }
  }
  const auto& ha = a.energy_history();
  const auto& hb = b.energy_history();
  if (ha.size() != hb.size()) return false;
  for (std::size_t i = 0; i < ha.size(); ++i)
    if (ha.step(i) != hb.step(i) || ha.field(i) != hb.field(i) ||
        ha.kinetic(i) != hb.kinetic(i))
      return false;
  return true;
}

/// Measured per-tile costs: run the Deterministic tiled mode (which times
/// every phase serially) and take, per tile, the min-across-steps of the
/// per-step sum of that tile's push phases — min-of-reps is the repo's
/// standard denoiser.
std::vector<double> measure_tile_costs(core::Simulation& sim, int nt,
                                       int steps) {
  std::vector<double> best(static_cast<std::size_t>(nt), 0.0);
  std::vector<double> cur(static_cast<std::size_t>(nt), 0.0);
  for (int s = 0; s < steps; ++s) {
    sim.step();
    std::fill(cur.begin(), cur.end(), 0.0);
    for (const auto& ps : sim.last_phase_stats()) {
      if (ps.name.rfind("push[", 0) != 0) continue;
      const auto dot = ps.name.rfind(".t");
      if (dot == std::string::npos) continue;
      const int t = std::atoi(ps.name.c_str() + dot + 2);
      if (t >= 0 && t < nt) cur[static_cast<std::size_t>(t)] += ps.seconds;
    }
    for (int t = 0; t < nt; ++t)
      if (s == 0 || cur[static_cast<std::size_t>(t)] <
                        best[static_cast<std::size_t>(t)])
        best[static_cast<std::size_t>(t)] = cur[static_cast<std::size_t>(t)];
  }
  return best;
}

/// Static baseline: contiguous tile blocks per worker (the classic static
/// domain decomposition — worker w owns tiles [w*nt/W, (w+1)*nt/W)).
double static_makespan(const std::vector<double>& cost, int workers) {
  const int nt = static_cast<int>(cost.size());
  double worst = 0;
  for (int w = 0; w < workers; ++w) {
    const int lo = w * nt / workers;
    const int hi = (w + 1) * nt / workers;
    double sum = 0;
    for (int t = lo; t < hi; ++t) sum += cost[static_cast<std::size_t>(t)];
    worst = std::max(worst, sum);
  }
  return worst;
}

/// Stealing-schedule model: the executor LPT-seeds ready tasks onto the
/// least-loaded deque and steal-half rebalances the residual, so the
/// achieved schedule tracks greedy list scheduling (largest task first to
/// the least-loaded worker) — replayed here deterministically.
double stealing_makespan(const std::vector<double>& cost, int workers) {
  std::vector<std::size_t> order(cost.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&cost](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  for (const std::size_t t : order) {
    auto it = std::min_element(load.begin(), load.end());
    *it += cost[t];
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "smoke");
  Params p;
  p.nx = static_cast<int>(bench::flag(argc, argv, "nx", smoke ? 8 : 16));
  p.ny = static_cast<int>(bench::flag(argc, argv, "ny", smoke ? 4 : 8));
  p.nz = static_cast<int>(bench::flag(argc, argv, "nz", smoke ? 16 : 32));
  p.ppc = static_cast<int>(bench::flag(argc, argv, "ppc", smoke ? 2 : 8));
  p.tiles = static_cast<int>(bench::flag(argc, argv, "tiles", smoke ? 8 : 16));
  p.steps = static_cast<int>(bench::flag(argc, argv, "steps", smoke ? 4 : 10));
  p.reps = static_cast<int>(bench::flag(argc, argv, "reps", 1));
  p.clump = static_cast<float>(bench::flag(argc, argv, "clump", 8));
  pk::initialize(
      static_cast<int>(bench::flag(argc, argv, "kernel_threads", 1)));

  std::printf(
      "tile balance bench: %dx%dx%d ppc=%d clump=%.1f tiles=%d%s\n\n",
      p.nx, p.ny, p.nz, p.ppc, static_cast<double>(p.clump), p.tiles,
      smoke ? " (smoke)" : "");

  // -- 1. bit-identity self-check (Deterministic tiled vs untiled) ------
  {
    Params small = p;
    small.nx = std::min(p.nx, 12);
    small.nz = std::min(p.nz, 8);
    small.ppc = std::min(p.ppc, 4);
    core::Simulation tiled = make_clumped(small);
    core::Simulation ref = make_clumped(small);
    tiled.config().tiles.enabled = true;
    tiled.config().tiles.count = std::min(small.nz, 4);
    tiled.config().tiles.exec = core::TileExec::Deterministic;
    ref.config().scheduler = core::StepScheduler::Sequential;
    const int check_steps = smoke ? 25 : 50;  // crosses the sort interval
    tiled.run(check_steps);
    ref.run(check_steps);
    if (!bitwise_equal(tiled, ref)) {
      std::fprintf(stderr,
                   "tile_balance: Deterministic tiled mode diverged from the "
                   "untiled Sequential step — bit-identity broken\n");
      return 1;
    }
    std::printf("bit-identity check: tiled == untiled over %d steps OK\n\n",
                check_steps);
  }

  // -- 2. measured per-tile costs, modeled schedules --------------------
  core::Simulation sim = make_clumped(p);
  sim.config().tiles.enabled = true;
  sim.config().tiles.count = p.tiles;
  sim.config().tiles.exec = core::TileExec::Deterministic;
  sim.run(2);  // warmup: first touch, bucketing
  const int nt = sim.tile_map().count();
  const std::vector<double> cost = measure_tile_costs(sim, nt, p.steps);
  const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
  const double imbalance = sim.last_tile_stats().imbalance;

  bench::Table t(
      {"workers", "static ms", "stealing ms", "speedup", "ideal ms"});
  double speedup_4w = 0;
  for (const int w : {2, 4, 8}) {
    const double st = static_makespan(cost, w);
    const double sl = stealing_makespan(cost, w);
    const double speedup = sl > 0 ? st / sl : 0;
    if (w == 4) speedup_4w = speedup;
    t.row({std::to_string(w), bench::fmt("%.3f", st * 1e3),
           bench::fmt("%.3f", sl * 1e3), bench::fmt("%.2fx", speedup),
           bench::fmt("%.3f", total / w * 1e3)});
    bench::Json("tile_balance")
        .field("workers", w)
        .field("tiles", nt)
        .field("static_ms", st * 1e3)
        .field("stealing_ms", sl * 1e3)
        .field("speedup", speedup)
        .field("ideal_ms", total / w * 1e3)
        .print();
  }
  t.print();
  std::printf("\nmeasured tile imbalance (max/mean): %.2f\n", imbalance);

  // -- 3. real stealing pool end-to-end ---------------------------------
  core::Simulation steal_sim = make_clumped(p);
  steal_sim.config().tiles.enabled = true;
  steal_sim.config().tiles.count = p.tiles;
  steal_sim.config().tiles.exec = core::TileExec::Stealing;
  steal_sim.config().tiles.workers = 4;
  const auto t0 = std::chrono::steady_clock::now();
  steal_sim.run(p.steps);
  const double steal_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& ss = steal_sim.last_tile_stats().steal;
  std::printf(
      "real stealing run (4 workers, %d steps): %.1f ms/step, "
      "%llu tasks, %llu steals moved %llu tasks, idle %llu us\n",
      p.steps, steal_wall * 1e3 / p.steps,
      static_cast<unsigned long long>(ss.tasks_run),
      static_cast<unsigned long long>(ss.steal_hits),
      static_cast<unsigned long long>(ss.tasks_stolen),
      static_cast<unsigned long long>(ss.idle_us));

  bench::Json("tile_balance")
      .field("summary", 1)
      .field("tiles", nt)
      .field("clump_factor", static_cast<double>(p.clump))
      .field("imbalance", imbalance)
      .field("speedup_4w", speedup_4w)
      .field("bit_identical", 1)
      .field("steal_tasks_run", static_cast<double>(ss.tasks_run))
      .field("steal_tasks_stolen", static_cast<double>(ss.tasks_stolen))
      .field("steal_idle_us", static_cast<double>(ss.idle_us))
      .field("wall_ms_per_step", steal_wall * 1e3 / p.steps)
      .print();

  const std::string path = bench::emit_bench_json("tile_balance");
  std::string err;
  if (path.empty() || !bench::validate_bench_report(path, &err)) {
    std::fprintf(stderr, "bench report validation failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("\nwrote %s (schema vpic-bench-v1, validated)\n", path.c_str());

  if (!smoke && speedup_4w < 1.5) {
    std::fprintf(stderr,
                 "tile_balance: 4-worker stealing speedup %.2fx is below the "
                 "1.5x acceptance bar\n",
                 speedup_4w);
    return 1;
  }
  return 0;
}
