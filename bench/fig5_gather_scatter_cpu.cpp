// fig5_gather_scatter_cpu — reproduces Figure 5 (a/b/c): gather-scatter
// bandwidth on CPUs for the three key patterns (contiguous, repeated x100,
// 5-point stencil) under the three sorting algorithms (standard, strided,
// tiled-strided).
//
// Two result sets are printed: (1) a real, measured run on this host; and
// (2) the analytic model evaluated for every Table-1 CPU (the paper's
// platforms are not available here — see DESIGN.md substitutions).
// Expected shape: contiguous keys make sorting irrelevant; repeated keys
// collapse bandwidth by up to two orders of magnitude with standard sort
// (atomic contention), with tiled-strided recovering the most.
#include <vector>

#include "bench_common.hpp"
#include "gs/gather_scatter.hpp"
#include "sort/sorters.hpp"

namespace {

using namespace vpic;
using pk::index_t;

pk::View<std::uint32_t, 1> sorted_keys(gs::Pattern pat, index_t n,
                                       index_t unique,
                                       sort::SortOrder order,
                                       std::uint32_t tile) {
  auto keys = gs::make_keys(pat, n, unique);
  pk::View<std::uint32_t, 1> payload("payload", n);
  pk::parallel_for(n, [&](index_t i) {
    payload(i) = static_cast<std::uint32_t>(i);
  });
  if (pat != gs::Pattern::Contiguous)
    sort::sort_pairs(order, keys, payload, tile);
  return keys;
}


// The paper's benchmark processes one billion elements (Section 5.4), so
// its tables exceed every LLC. This harness defaults to a much smaller n;
// to preserve the working-set:cache ratios of the original experiment it
// scales each modeled device's LLC (and the tiled-sort tile) by
// n / 1e9 — "cache-scaled replay" (see DESIGN.md / EXPERIMENTS.md).
gpusim::DeviceSpec cache_scaled(const gpusim::DeviceSpec& dev, double scale) {
  gpusim::DeviceSpec d = dev;
  d.llc_mb = std::max(dev.llc_mb * scale, 16.0 * dev.line_bytes / 1e6);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 22);
  const index_t unique = std::max<index_t>(1, n / 100);
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));
  const auto tile =
      static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());

  const sort::SortOrder orders[] = {sort::SortOrder::Standard,
                                    sort::SortOrder::Strided,
                                    sort::SortOrder::TiledStrided};
  const gs::Pattern pats[] = {gs::Pattern::Contiguous, gs::Pattern::Repeated,
                              gs::Pattern::Stencil5};

  std::printf(
      "== Figure 5: CPU gather-scatter bandwidth (GB/s) ==\n"
      "n=%lld elements, repeated pattern: %lld unique keys x100, tile=%u\n\n",
      static_cast<long long>(n), static_cast<long long>(unique), tile);

  // ---- (1) real host run ----
  std::printf("(1) measured on this host (%d threads):\n",
              pk::DefaultExecSpace::concurrency());
  bench::Table host({"pattern", "standard", "strided", "tiled-strided"});
  for (const auto pat : pats) {
    std::vector<std::string> row{gs::to_string(pat)};
    for (const auto order : orders) {
      const index_t uniq =
          pat == gs::Pattern::Contiguous ? n : unique;
      auto keys = sorted_keys(pat, n, uniq, order, tile);
      pk::View<double, 1> data("data", gs::table_size(pat, uniq));
      pk::View<double, 1> out("out", n);
      pk::parallel_for(data.size(),
                       [&](index_t i) { data(i) = static_cast<double>(i); });
      double best = 0;
      for (int r = 0; r < reps; ++r) {
        gs::HostResult res;
        if (pat == gs::Pattern::Stencil5) {
          res = gs::run_stencil5(keys, data, out,
                                 std::max<index_t>(1, uniq / 64));
        } else {
          res = gs::run_gather_scatter(keys, data, out);
        }
        best = std::max(best, res.gb_per_s);
      }
      row.push_back(bench::fmt("%.2f", best));
    }
    host.row(std::move(row));
  }
  host.print();

  // ---- (2) modeled Table-1 CPUs ----
  std::printf("\n(2) analytic model, Table-1 CPU platforms:\n");
  for (const auto pat : pats) {
    std::printf("\n  pattern: %s\n", gs::to_string(pat));
    bench::Table t({"platform", "standard", "strided", "tiled-strided",
                    "STREAM (GB/s)"});
    const double scale = static_cast<double>(n) / 1e9;
    for (const auto& name : gpusim::cpu_names()) {
      const auto dev = cache_scaled(gpusim::device(name), scale);
      std::vector<std::string> row{name};
      for (const auto order : orders) {
        const index_t uniq = pat == gs::Pattern::Contiguous ? n : unique;
        // Tile choice per the paper: thread count on CPUs — floored at
        // 1024 in the scaled replay so one key's repeats stay separated
        // beyond the atomic-pipeline window, as they are at full scale.
        auto keys = sorted_keys(
            pat, n, uniq, order,
            static_cast<std::uint32_t>(std::max(1024, dev.core_count)));
        const auto timing =
            pat == gs::Pattern::Stencil5
                ? gs::model_stencil5(dev, keys, uniq,
                                     std::max<index_t>(1, uniq / 64))
                : gs::model_gather_scatter(dev, keys, uniq);
        row.push_back(bench::fmt("%.2f", timing.bw_gbs));
      }
      row.push_back(bench::fmt("%.1f", dev.dram_bw_gbs));
      t.row(std::move(row));
    }
    t.print();
  }
  return 0;
}
