// fig6_gather_scatter_gpu — reproduces Figure 6 (a/b/c): gather-scatter
// bandwidth on the six Table-1 GPUs for the three key patterns under the
// three sorting algorithms, via the analytic device model driven by the
// real sorted key arrays.
//
// Expected shape (paper Section 5.4): contiguous keys — all sorts
// identical; repeated keys — standard sort collapses (atomics/latency),
// hardest on V100/MI100/MI250, strided and tiled-strided restore
// coalescing with tiled-strided nearly doubling strided on A100/H100 while
// on AMD strided sometimes wins; stencil — both improve over standard but
// by less.
#include <vector>

#include "bench_common.hpp"
#include "gs/gather_scatter.hpp"
#include "sort/sorters.hpp"

namespace {

using namespace vpic;
using pk::index_t;

pk::View<std::uint32_t, 1> sorted_keys(gs::Pattern pat, index_t n,
                                       index_t unique,
                                       sort::SortOrder order,
                                       std::uint32_t tile) {
  auto keys = gs::make_keys(pat, n, unique);
  pk::View<std::uint32_t, 1> payload("payload", n);
  pk::parallel_for(n, [&](index_t i) {
    payload(i) = static_cast<std::uint32_t>(i);
  });
  if (pat != gs::Pattern::Contiguous)
    sort::sort_pairs(order, keys, payload, tile);
  return keys;
}


// The paper's benchmark processes one billion elements (Section 5.4), so
// its tables exceed every LLC. This harness defaults to a much smaller n;
// to preserve the working-set:cache ratios of the original experiment it
// scales each modeled device's LLC (and the tiled-sort tile) by
// n / 1e9 — "cache-scaled replay" (see DESIGN.md / EXPERIMENTS.md).
gpusim::DeviceSpec cache_scaled(const gpusim::DeviceSpec& dev, double scale) {
  gpusim::DeviceSpec d = dev;
  d.llc_mb = std::max(dev.llc_mb * scale, 16.0 * dev.line_bytes / 1e6);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 24);
  const index_t unique = std::max<index_t>(1, n / 100);

  const sort::SortOrder orders[] = {sort::SortOrder::Standard,
                                    sort::SortOrder::Strided,
                                    sort::SortOrder::TiledStrided};
  const gs::Pattern pats[] = {gs::Pattern::Contiguous, gs::Pattern::Repeated,
                              gs::Pattern::Stencil5};

  std::printf(
      "== Figure 6: GPU gather-scatter bandwidth (GB/s, analytic model) "
      "==\nn=%lld elements, repeated pattern: %lld unique keys x100, "
      "tile = 3x GPU cores (paper Section 5.4)\n",
      static_cast<long long>(n), static_cast<long long>(unique));

  for (const auto pat : pats) {
    std::printf("\n  pattern: %s\n", gs::to_string(pat));
    bench::Table t({"GPU", "standard", "strided", "tiled-strided",
                    "STREAM (GB/s)"});
    const double scale = static_cast<double>(n) / 1e9;
    for (const auto& name : gpusim::gpu_names()) {
      const auto dev = cache_scaled(gpusim::device(name), scale);
      std::vector<std::string> row{name};
      for (const auto order : orders) {
        const index_t uniq = pat == gs::Pattern::Contiguous ? n : unique;
        // Paper tile: 3x GPU cores. In the cache-scaled replay the tile
        // must keep the properties that make it work at full scale: far
        // larger than the warp/atomic-pipeline window (so repeats of one
        // key never contend) while its key data still fits the (scaled)
        // LLC with room for the streamed arrays.
        // ...quarter of the scaled LLC per stream (gather + scatter RMW
        // both walk the tile), floored at 2x the atomic window.
        const auto tile = static_cast<std::uint32_t>(std::max(
            2048.0, std::min(3.0 * dev.core_count,
                             dev.llc_mb * 1e6 / 32.0)));
        auto keys = sorted_keys(pat, n, uniq, order, tile);
        const auto timing =
            pat == gs::Pattern::Stencil5
                ? gs::model_stencil5(dev, keys, uniq,
                                     std::max<index_t>(1, uniq / 64))
                : gs::model_gather_scatter(dev, keys, uniq);
        row.push_back(bench::fmt("%.2f", timing.bw_gbs));
      }
      row.push_back(bench::fmt("%.1f", dev.dram_bw_gbs));
      t.row(std::move(row));
    }
    t.print();
  }
  return 0;
}
