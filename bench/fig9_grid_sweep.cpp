// fig9_grid_sweep — reproduces Figure 9: particle pushes per nanosecond as
// a function of grid size at fixed particle count, with sorting disabled
// (random particle order), on V100 / A100 / MI300A.
//
// Expected shape: each GPU shows a sharp peak near the grid size whose
// working set fills its last-level cache (paper: V100 ~13.8k points,
// A100 ~85k, MI300A anomalous due to its very large cache), with a decline
// at very small grids from colliding current-deposition writes.
#include <vector>

#include "bench_common.hpp"
#include "gpusim/gpusim.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  const auto particles =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "particles", 2'000'000));
  const auto cap =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "cap", 1'000'000));

  std::vector<std::uint64_t> grids;
  for (std::uint64_t g = 2'000; g <= 4'000'000; g = g * 3 / 2)
    grids.push_back(g);

  std::printf(
      "== Figure 9: pushes/ns vs grid size (fixed %llu particles, sorting "
      "disabled) ==\n\n",
      static_cast<unsigned long long>(particles));

  for (const auto& name : {"V100", "A100", "MI300A"}) {
    const auto& dev = gpusim::device(name);
    const auto sweep =
        gpusim::grid_size_sweep(dev, particles, grids, {}, 777, cap);
    std::printf("%s (LLC %.0f MB):\n", name, dev.llc_mb);
    bench::Table t({"grid points", "grid MB", "pushes/ns", "fits LLC",
                    "bound"});
    std::size_t peak = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i)
      if (sweep[i].pushes_per_ns > sweep[peak].pushes_per_ns) peak = i;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      t.row({std::to_string(p.grid_points) + (i == peak ? " *peak*" : ""),
             bench::fmt("%.1f", p.grid_mb),
             bench::fmt("%.2f", p.pushes_per_ns), p.fits_llc ? "yes" : "no",
             gpusim::to_string(p.bound)});
    }
    t.print();
    std::printf("  peak: %.2f pushes/ns at %llu grid points\n\n",
                sweep[peak].pushes_per_ns,
                static_cast<unsigned long long>(sweep[peak].grid_points));
  }
  return 0;
}
