// validation_decks — physics quality gate: runs each input deck briefly
// and prints the energy balance and its drift. Not a paper figure; this is
// the "does the plasma behave" check a nightly CI would watch, using the
// same EnergyHistory diagnostic users get from the public API.
#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

using namespace vpic;

void report(const char* name, core::Simulation& sim, int steps,
            int interval) {
  sim.config().energy_interval = interval;
  sim.run(steps);
  const auto& h = sim.energy_history();
  std::printf("%s (%d steps):\n", name, steps);
  bench::Table t({"step", "field E", "kinetic E", "total E"});
  for (std::size_t i = 0; i < h.size(); ++i)
    t.row({std::to_string(h.step(i)), bench::fmt("%.4e", h.field(i)),
           bench::fmt("%.4e", h.kinetic(i)),
           bench::fmt("%.6e", h.total(i))});
  t.print();
  std::printf("  max relative energy drift: %.3f%%%s\n\n",
              100.0 * h.max_relative_drift(),
              name[0] == 'u' && h.max_relative_drift() > 0.05
                  ? "  <-- CHECK"
                  : "");
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = static_cast<int>(vpic::bench::flag(argc, argv, "steps", 60));
  std::printf("== Physics validation: deck energy balance ==\n"
              "(thermal plasma should conserve; LPI gains energy from the "
              "antenna; Weibel converts beam KE to field)\n\n");

  {
    core::SimulationConfig cfg;
    cfg.grid = core::Grid(8, 8, 8, 8, 8, 8, 0);
    cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.6f);
    core::Simulation sim(cfg);
    const auto e = sim.add_species("e", -1.0f, 1.0f, 1 << 14);
    const auto i = sim.add_species("i", 1.0f, 100.0f, 1 << 14);
    sim.load_uniform_plasma(e, 8, 0.1f);
    sim.load_uniform_plasma(i, 8, 0.01f);
    report("uniform thermal plasma", sim, steps, steps / 6);
  }
  {
    core::decks::LpiParams p;
    p.nx = 24;
    p.ny = 8;
    p.nz = 8;
    p.ppc = 8;
    auto sim = core::decks::make_lpi(p);
    report("laser-plasma (LPI)", sim, steps, steps / 6);
  }
  {
    core::decks::WeibelParams p;
    p.nx = 12;
    p.ny = 12;
    p.nz = 12;
    p.ppc = 8;
    p.u_beam = 0.4f;
    auto sim = core::decks::make_weibel(p);
    report("Weibel (counter-streaming)", sim, steps, steps / 6);
  }
  {
    core::decks::ReconnectionParams p;
    p.nx = 16;
    p.ny = 4;
    p.nz = 16;
    p.ppc = 6;
    auto sim = core::decks::make_reconnection(p);
    report("magnetic reconnection (Harris)", sim, steps, steps / 6);
  }
  return 0;
}
