// fig1_code_breakdown — reproduces Figure 1: the share of the codebase
// dedicated to per-ISA SIMD support vs physics kernels. Prints (a) the
// paper's published VPIC 1.2 breakdown and (b) the same scan applied to
// this repository, whose `v4` library reproduces the per-ISA duplication
// structurally and whose portable layers demonstrate the alternative.
#include <filesystem>

#include "bench_common.hpp"
#include "codestats/codestats.hpp"

#ifndef VPIC_SOURCE_DIR
#define VPIC_SOURCE_DIR "."
#endif

int main(int, char**) {
  using namespace vpic;

  std::printf("== Figure 1: SIMD-support vs kernel code breakdown ==\n\n");

  std::printf("(a) VPIC 1.2 published breakdown (paper Fig. 1):\n");
  bench::Table ref({"Category", "% of codebase"});
  double simd_total = 0;
  for (const auto& [cat, pct] : codestats::vpic12_reference_breakdown()) {
    ref.row({cat, bench::fmt("%.0f%%", pct)});
    if (cat.rfind("simd:", 0) == 0) simd_total += pct;
  }
  ref.print();
  std::printf("  SIMD support total: %.0f%% (paper: >57%%), kernels: 11%%\n\n",
              simd_total);

  const std::filesystem::path src =
      std::filesystem::path(VPIC_SOURCE_DIR) / "src";
  const auto stats = codestats::scan_tree(src);
  std::printf("(b) this repository (%s, %d effective lines):\n",
              src.string().c_str(), stats.total_code_lines);
  bench::Table mine({"Category", "code lines", "% of scanned"});
  for (const auto& [cat, lines] : stats.lines_by_category) {
    mine.row({cat, std::to_string(lines),
              bench::fmt("%.1f%%",
                         100.0 * lines /
                             std::max(1, stats.total_code_lines))});
  }
  mine.print();
  std::printf(
      "\n  ad hoc per-ISA SIMD (v4): %.1f%% vs portable SIMD (single "
      "source): %.1f%%\n  -> the per-ISA library re-implements one API %d "
      "times; the portable library once.\n",
      100.0 * stats.fraction("simd:"), 100.0 * stats.fraction("portable-simd"),
      4);
  return 0;
}
