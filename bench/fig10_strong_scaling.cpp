// fig10_strong_scaling — reproduces Figure 10 (a/b/c): strong scaling of
// VPIC 2.0 on Sierra (V100, 1-32 GPUs), Selene (A100, 8-512 GPUs) and
// Tuolumne (MI300A, 1-64 GPUs), with grid sizes chosen so the per-GPU grid
// crosses under the LLC inside the sweep (paper Section 5.5).
//
// Expected shape: superlinear speedup once the per-GPU grid fits in cache
// (paper: 25x at 8x on V100, 19x at 8x on A100, 90.5x at 64x on MI300A),
// with V100 flattening past 8 GPUs as communication overhead takes over
// and A100 scaling near-ideally to 512.
#include <vector>

#include "bench_common.hpp"
#include "gpusim/gpusim.hpp"

namespace {

void run_sweep(const char* system, const char* device_name,
               std::uint64_t total_grid, std::uint64_t total_particles,
               const std::vector<int>& ranks, std::uint64_t cap) {
  using namespace vpic;
  const auto& dev = gpusim::device(device_name);
  const auto pts = gpusim::strong_scaling(dev, total_grid, total_particles,
                                          ranks, {}, {}, 777, cap);
  std::printf("%s (%s): grid %llu points, %llu particles\n", system,
              device_name, static_cast<unsigned long long>(total_grid),
              static_cast<unsigned long long>(total_particles));
  bench::Table t({"GPUs", "push (ms)", "comm (ms)", "step (ms)", "speedup",
                  "overlapped (ms)", "ovl speedup", "ideal", "efficiency",
                  "grid fits LLC"});
  for (const auto& p : pts) {
    t.row({std::to_string(p.ranks),
           bench::fmt("%.3f", p.push_seconds * 1e3),
           bench::fmt("%.3f", p.comm_seconds * 1e3),
           bench::fmt("%.3f", p.step_seconds * 1e3),
           bench::fmt("%.1fx", p.speedup),
           bench::fmt("%.3f", p.overlapped_step_seconds * 1e3),
           bench::fmt("%.1fx", p.overlapped_speedup),
           bench::fmt("%.0fx", p.ideal_speedup),
           bench::fmt("%.0f%%", 100.0 * p.speedup / p.ideal_speedup),
           p.grid_fits_llc ? "yes" : "no"});
  }
  t.print();
  // Paper headline: speedup at an 8x (V100/A100) or 64x (MI300A) rank
  // increase relative to the first point; the overlapped column models the
  // comm/compute-overlap schedule (docs/ASYNC.md) hiding the halo
  // exchange behind the interior push.
  const auto& last = pts.back();
  std::printf("  %0.1fx speedup for a %.0fx increase in GPUs "
              "(%.1fx with modeled comm/compute overlap, %.0f%% of comm "
              "hidden at the last point)\n\n",
              last.speedup, last.ideal_speedup, last.overlapped_speedup,
              last.comm_seconds > 0
                  ? 100.0 * last.comm_hidden_seconds / last.comm_seconds
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpic;
  const auto cap =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "cap", 1'000'000));

  std::printf("== Figure 10: strong scaling (analytic cache + alpha-beta "
              "comm model) ==\n\n");

  // Sierra: V100's 6 MB LLC holds ~7.5k effective points; grid sized so
  // the per-GPU share fits at 8 GPUs (the paper's superlinear knee).
  run_sweep("Fig 10a  Sierra", "V100", 8ull * 7'500, 40'000'000,
            {1, 2, 4, 8, 16, 32}, cap);
  // Selene: A100's 40 MB holds ~50k points; fits at 64 GPUs.
  run_sweep("Fig 10b  Selene", "A100", 64ull * 50'000, 400'000'000,
            {8, 16, 32, 64, 128, 256, 512}, cap);
  // Tuolumne: MI300A's 256 MB holds ~320k points; fits at 32 GPUs.
  run_sweep("Fig 10c  Tuolumne", "MI300A", 32ull * 320'000, 200'000'000,
            {1, 2, 4, 8, 16, 32, 64}, cap);
  return 0;
}
