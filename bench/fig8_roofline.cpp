// fig8_roofline — reproduces Figure 8: rooflines of the particle push
// kernel on H100, MI250 and MI300A for the different sorting orders, from
// the analytic model's counters (the stand-in for nsight-compute /
// rocprof-compute; see DESIGN.md).
//
// Expected shape: on H100, standard sort has high AI (~3.6) but ~1% peak
// utilization; tiled-strided keeps the AI while lifting throughput ~12x.
// On MI250 the gain is larger (~20x). On MI300A all orders sit below
// AI ~1 and are memory-bound.
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "gpusim/gpusim.hpp"
#include "roofline/roofline.hpp"

namespace {

using namespace vpic;

std::vector<std::uint32_t> order_cells(const pk::View<std::uint32_t, 1>& keys,
                                       sort::SortOrder order,
                                       std::uint32_t tile) {
  pk::View<std::uint32_t, 1> k("k", keys.size());
  pk::View<std::uint32_t, 1> payload("p", keys.size());
  pk::deep_copy(k, keys);
  sort::sort_pairs(order, k, payload, tile);
  return {k.data(), k.data() + k.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 8));

  core::decks::LpiParams lp;
  lp.nx = static_cast<int>(vpic::bench::flag(argc, argv, "nx", 96));
  lp.ny = static_cast<int>(vpic::bench::flag(argc, argv, "ny", 48));
  lp.nz = static_cast<int>(vpic::bench::flag(argc, argv, "nz", 48));
  lp.ppc = ppc;
  lp.sort_interval = 0;
  auto sim = core::decks::make_lpi(lp);
  sim.run(5);
  auto keys = sim.species(0).cell_keys();
  const auto grid_points = static_cast<std::uint64_t>(sim.grid().nv());

  std::printf(
      "== Figure 8: particle-push rooflines per sorting order ==\n\n");
  for (const auto& name : {"H100", "MI250", "MI300A"}) {
    const auto& dev = gpusim::device(name);
    const auto tile = static_cast<std::uint32_t>(3 * dev.core_count);
    std::vector<roofline::RooflinePoint> pts;
    for (const auto order :
         {sort::SortOrder::Standard, sort::SortOrder::Strided,
          sort::SortOrder::TiledStrided}) {
      const auto cells = order_cells(keys, order, tile);
      const auto res = gpusim::model_push(dev, cells, grid_points);
      pts.push_back(
          roofline::analyze(dev, res.profile, sort::to_string(order)));
    }
    std::printf("%s\n", roofline::format_report(dev, pts).c_str());
    const double gain = pts.back().gflops / pts.front().gflops;
    std::printf("  tiled-strided vs standard throughput: %.1fx\n\n", gain);
  }
  return 0;
}
