// step_overlap — comm/compute overlap of the distributed step
// (docs/ASYNC.md): times the fenced reference schedule against the
// overlapped schedule (DomainConfig::overlap) on a z-slab decomposition
// with an injected minimpi link latency (WorldOptions::latency_us). The
// injected latency is what makes the overlap measurable in-process:
// without it a buffered isend is matchable instantly and there is no wait
// to hide. The overlapped schedule runs the interpolator planes 1..nz-1
// and the interior particle push while the leading z-halo exchange is in
// flight, so per step it saves up to min(latency, interior compute).
//
// Emits one vpic-bench-v1 record per schedule plus a summary record with
// the speedup and the fenced-vs-overlapped energy agreement (the two
// schedules differ only by fp-reordering of current deposits).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/domain.hpp"
#include "minimpi/minimpi.hpp"

namespace {

struct RunResult {
  double seconds = 0;       // timed steps, wall, rank 0
  double energy_total = 0;  // globally reduced at the end
  std::int64_t np = 0;      // global particle count (conservation check)
};

RunResult run_schedule(bool overlap, int ranks, double latency_us, int nx,
                       int ny, int nz, int ppc, int steps) {
  using namespace vpic;
  RunResult out;
  mpi::WorldOptions wopts;
  wopts.latency_us = latency_us;
  mpi::run(ranks, wopts, [&](mpi::Comm& comm) {
    core::DomainConfig cfg;
    cfg.nx = nx;
    cfg.ny = ny;
    cfg.nz = nz;
    cfg.lx = static_cast<float>(nx);
    cfg.ly = static_cast<float>(ny);
    cfg.lz = static_cast<float>(nz);
    cfg.overlap = overlap;
    core::DistributedSimulation sim(cfg, comm);
    const auto e = sim.add_species(
        "electron", -1, 1,
        static_cast<core::index_t>(nx) * ny * (nz / ranks) * ppc * 4);
    sim.load_uniform_plasma(e, ppc, 0.3f);

    sim.step();  // warmup: fills halos, settles allocations
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(steps);
    comm.barrier();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto energy = sim.energies();
    const auto np = sim.global_np(e);
    if (comm.rank() == 0) {
      out.seconds = secs;
      out.energy_total = energy.total();
      out.np = np;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpic;
  const int nx = static_cast<int>(bench::flag(argc, argv, "nx", 16));
  const int ny = static_cast<int>(bench::flag(argc, argv, "ny", 16));
  const int nz = static_cast<int>(bench::flag(argc, argv, "nz", 16));
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 8));
  const int steps = static_cast<int>(bench::flag(argc, argv, "steps", 5));
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));
  const int ranks = static_cast<int>(bench::flag(argc, argv, "ranks", 2));
  const double latency_us = static_cast<double>(
      bench::flag(argc, argv, "latency_us", 400));

  std::printf("== step_overlap: fenced vs overlapped distributed step ==\n");
  std::printf("grid %dx%dx%d, ppc %d, %d ranks, %d steps x %d reps, "
              "link latency %.0f us\n\n",
              nx, ny, nz, ppc, ranks, steps, reps, latency_us);

  bench::Timing fenced, overlapped;
  RunResult rf, ro;
  for (int r = 0; r < reps; ++r) {
    rf = run_schedule(false, ranks, latency_us, nx, ny, nz, ppc, steps);
    fenced.add_sample(rf.seconds);
    ro = run_schedule(true, ranks, latency_us, nx, ny, nz, ppc, steps);
    overlapped.add_sample(ro.seconds);
  }

  const double per_step_fenced = fenced.min_s / steps;
  const double per_step_overlap = overlapped.min_s / steps;
  const double speedup = per_step_fenced / per_step_overlap;
  const double energy_rel_diff =
      std::abs(rf.energy_total - ro.energy_total) /
      std::max(1e-300, std::abs(rf.energy_total));

  bench::Table t({"schedule", "step (ms)", "total (ms)", "speedup"});
  t.row({"fenced", bench::fmt("%.3f", per_step_fenced * 1e3),
         bench::fmt("%.3f", fenced.min_s * 1e3), "1.0x"});
  t.row({"overlapped", bench::fmt("%.3f", per_step_overlap * 1e3),
         bench::fmt("%.3f", overlapped.min_s * 1e3),
         bench::fmt("%.2fx", speedup)});
  t.print();
  std::printf("energy agreement: rel diff %.3g (fp-reordering only)\n\n",
              energy_rel_diff);

  {
    bench::Json j("step_overlap");
    j.field("mode", "fenced")
        .field("ranks", ranks)
        .field("steps", steps)
        .field("latency_us", latency_us)
        .timing("step_total", fenced)
        .field("step_ms", per_step_fenced * 1e3);
    j.print();
  }
  {
    bench::Json j("step_overlap");
    j.field("mode", "overlapped")
        .field("ranks", ranks)
        .field("steps", steps)
        .field("latency_us", latency_us)
        .timing("step_total", overlapped)
        .field("step_ms", per_step_overlap * 1e3);
    j.print();
  }
  {
    bench::Json j("step_overlap");
    j.field("mode", "summary")
        .field("fenced_ms", per_step_fenced * 1e3)
        .field("overlapped_ms", per_step_overlap * 1e3)
        .field("speedup", speedup)
        .field("energy_rel_diff", energy_rel_diff)
        .field("global_np", rf.np);
    j.print();
  }
  const std::string path = bench::emit_bench_json("step_overlap");
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());

  // Physics guard: the two schedules must agree to fp-reordering
  // tolerance and conserve particles.
  if (energy_rel_diff > 1e-3 || rf.np != ro.np) {
    std::fprintf(stderr,
                 "FAIL: schedules disagree (energy rel diff %.3g, np %lld "
                 "vs %lld)\n",
                 energy_rel_diff, static_cast<long long>(rf.np),
                 static_cast<long long>(ro.np));
    return 1;
  }
  return 0;
}
