// ext_weak_scaling — companion diagnostic to the Fig. 10 strong-scaling
// study: the per-GPU problem is held fixed (a cache-resident grid, per the
// paper's sweet spot) while GPUs are added. Ideal weak scaling is a flat
// step time; the deviation isolates the alpha-beta communication model's
// growth and shows the paper's claim that the 6-neighbor exchange "scales
// efficiently as more nodes are added" (Section 2.1).
#include "bench_common.hpp"
#include "gpusim/gpusim.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  const auto cap =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "cap", 500'000));

  std::printf("== Extension: weak scaling (fixed per-GPU problem) ==\n\n");
  for (const char* name : {"V100", "A100", "MI300A"}) {
    const auto& dev = gpusim::device(name);
    // Cache-resident per-GPU grid (the Fig. 9 peak), healthy ppc.
    const auto grid =
        static_cast<std::uint64_t>(0.9 * dev.llc_bytes() / 800.0);
    const std::uint64_t particles = grid * 32;
    const auto pts = gpusim::weak_scaling(
        dev, grid, particles, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}, {},
        {}, 777, cap);
    std::printf("%s: %llu grid points, %llu particles per GPU\n", name,
                static_cast<unsigned long long>(grid),
                static_cast<unsigned long long>(particles));
    bench::Table t({"GPUs", "push (ms)", "comm (ms)", "step (ms)",
                    "efficiency"});
    for (const auto& p : pts)
      t.row({std::to_string(p.ranks),
             bench::fmt("%.3f", p.push_seconds * 1e3),
             bench::fmt("%.3f", p.comm_seconds * 1e3),
             bench::fmt("%.3f", p.step_seconds * 1e3),
             bench::fmt("%.0f%%", 100.0 * p.efficiency)});
    t.print();
    std::printf("\n");
  }
  return 0;
}
