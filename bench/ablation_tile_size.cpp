// ablation_tile_size — design-choice ablation (DESIGN.md section 5): the
// paper fixes the tiled-strided tile at (#CPU threads) on CPUs and
// (3 x GPU cores) on GPUs without a sensitivity study. This harness sweeps
// the tile size on the modeled A100 and MI250 (cache-scaled replay of the
// repeated-keys gather-scatter) to show the plateau the paper's choice
// sits on: too-small tiles re-introduce atomic contention, too-large tiles
// overflow the LLC and lose reuse.
#include <vector>

#include "bench_common.hpp"
#include "gs/gather_scatter.hpp"
#include "sort/sorters.hpp"

namespace {

using namespace vpic;
using pk::index_t;

gpusim::DeviceSpec cache_scaled(const gpusim::DeviceSpec& dev, double scale) {
  gpusim::DeviceSpec d = dev;
  d.llc_mb = std::max(dev.llc_mb * scale, 16.0 * dev.line_bytes / 1e6);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 22);
  const index_t unique = std::max<index_t>(1, n / 100);
  const double scale = static_cast<double>(n) / 1e9;

  std::printf(
      "== Ablation: tiled-strided tile size (modeled, cache-scaled replay, "
      "n=%lld) ==\n\n",
      static_cast<long long>(n));

  for (const char* name : {"A100", "MI250"}) {
    const auto dev = cache_scaled(gpusim::device(name), scale);
    const auto paper_tile = static_cast<std::uint32_t>(std::max(
        2048.0,
        std::min(3.0 * dev.core_count, dev.llc_mb * 1e6 / 32.0)));
    std::printf("%s (scaled LLC %.0f KB; harness default tile %u):\n", name,
                dev.llc_mb * 1e3, paper_tile);
    bench::Table t({"tile (keys)", "tile data (KB)", "GB/s", "bound"});
    for (std::uint32_t tile :
         {64u, 256u, 1024u, 2048u, 4096u, 8192u, 16384u, 65536u, 262144u}) {
      auto keys = gs::make_keys(gs::Pattern::Repeated, n, unique);
      pk::View<std::uint32_t, 1> payload("p", n);
      sort::tiled_strided_sort(keys, payload, tile);
      const auto timing = gs::model_gather_scatter(dev, keys, unique);
      t.row({std::to_string(tile) + (tile == paper_tile ? " *" : ""),
             bench::fmt("%.1f", tile * 8.0 / 1e3),
             bench::fmt("%.2f", timing.bw_gbs),
             gpusim::to_string(timing.bound)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
