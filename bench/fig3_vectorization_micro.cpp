// fig3_vectorization_micro — reproduces Figure 3: the AXPY, PLANCKIAN and
// PI_REDUCE microkernels (derived from RAJAPerf) under the auto, guided
// and manual vectorization strategies. Reported per-iteration time maps to
// the paper's runtime-normalized-to-auto bars: expect AXPY nearly equal
// across strategies, PLANCKIAN to gain from guided/manual (libm exp blocks
// auto-vectorization), and PI_REDUCE to gain most from manual.
#include <benchmark/benchmark.h>

#include "kernels/rajaperf_kernels.hpp"
#include "pk/pk.hpp"

namespace {

using vpic::kernels::Strategy;
using vpic::pk::index_t;

constexpr index_t kN = 1 << 21;

struct Arrays {
  vpic::pk::View<double, 1> x{"x", kN}, y{"y", kN}, u{"u", kN}, v{"v", kN};
  Arrays() {
    vpic::pk::parallel_for(kN, [&](index_t i) {
      x(i) = 0.1 + 1e-6 * static_cast<double>(i % 1000);
      v(i) = 1.0 + 1e-7 * static_cast<double>(i % 777);
      u(i) = 0.5;
      y(i) = 0.0;
    });
  }
};

Arrays& arrays() {
  static Arrays a;
  return a;
}

void BM_Axpy(benchmark::State& state) {
  auto& a = arrays();
  const auto s = static_cast<Strategy>(state.range(0));
  for (auto _ : state) {
    vpic::kernels::axpy(s, 1.0001, a.x, a.y);
    benchmark::DoNotOptimize(a.y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kN * 24);
  state.SetLabel(vpic::kernels::to_string(s));
}

void BM_Planckian(benchmark::State& state) {
  auto& a = arrays();
  const auto s = static_cast<Strategy>(state.range(0));
  for (auto _ : state) {
    vpic::kernels::planckian(s, a.x, a.v, a.u, a.y);
    benchmark::DoNotOptimize(a.y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
  state.SetLabel(vpic::kernels::to_string(s));
}

void BM_PiReduce(benchmark::State& state) {
  const auto s = static_cast<Strategy>(state.range(0));
  double pi = 0;
  for (auto _ : state) {
    pi = vpic::kernels::pi_reduce(s, kN);
    benchmark::DoNotOptimize(pi);
  }
  if (std::abs(pi - 3.141592653589793) > 1e-9)
    state.SkipWithError("pi mismatch");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
  state.SetLabel(vpic::kernels::to_string(s));
}

}  // namespace

BENCHMARK(BM_Axpy)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Planckian)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PiReduce)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
