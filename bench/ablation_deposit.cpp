// ablation_deposit — design-choice ablation (DESIGN.md section 5): the
// current-deposition scatter uses atomic adds so particle loops can run
// fully parallel. The alternative — non-atomic deposits — is only safe
// serially (or with per-thread accumulator replicas, VPIC 1.2's approach
// on CPUs). This harness measures the real host cost of the atomic RMW on
// the particle push and on the raw scatter kernel, under the three sorting
// orders (sorting changes the conflict rate, which changes how much the
// atomics cost — the CPU-side mechanism behind Fig. 5b).
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "gs/gather_scatter.hpp"

namespace {

using namespace vpic;
using pk::index_t;

double best_of(int reps, const std::function<double()>& run) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 21);
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));
  const index_t unique = std::max<index_t>(1, n / 100);

  std::printf("== Ablation: atomic vs non-atomic current deposit ==\n\n");

  // (a) raw scatter kernel, measured on the host.
  std::printf("(a) raw scatter-add of %lld elements over %lld keys:\n",
              static_cast<long long>(n), static_cast<long long>(unique));
  bench::Table t({"order", "atomic (ms)", "plain (ms)", "atomic cost"});
  for (auto order : {sort::SortOrder::Standard, sort::SortOrder::Strided,
                     sort::SortOrder::TiledStrided}) {
    auto keys = gs::make_keys(gs::Pattern::Repeated, n, unique);
    pk::View<std::uint32_t, 1> payload("p", n);
    sort::sort_pairs(order, keys, payload, 4096u);
    pk::View<double, 1> data("d", unique), src("s", n);
    pk::deep_copy(src, 1.0);
    const std::uint32_t* k = keys.data();
    double* d = data.data();
    const double* s = src.data();

    const double t_atomic = best_of(reps, [&] {
      pk::Timer timer;
      pk::parallel_for(n, [=](index_t i) { pk::atomic_add(&d[k[i]], s[i]); });
      return timer.seconds();
    });
    // Non-atomic baseline: only valid because the deposit itself is what
    // we time, not its correctness under threading (VPIC 1.2 instead
    // replicates accumulators per thread and reduces afterwards).
    const double t_plain = best_of(reps, [&] {
      pk::Timer timer;
      pk::parallel_for(pk::RangePolicy<pk::Serial>(n),
                       [=](index_t i) { d[k[i]] += s[i]; });
      return timer.seconds();
    });
    t.row({sort::to_string(order), bench::fmt("%.2f", t_atomic * 1e3),
           bench::fmt("%.2f", t_plain * 1e3),
           bench::fmt("%.2fx", t_atomic / t_plain)});
  }
  t.print();

  // (b) whole particle push with the two deposit modes (serial runs so
  // the non-atomic variant is race-free).
  std::printf("\n(b) particle push, accumulate_j atomic vs plain "
              "(single-thread, LPI deck):\n");
  core::decks::LpiParams lp;
  lp.nx = 16;
  lp.ny = 8;
  lp.nz = 8;
  lp.ppc = 24;
  auto sim = core::decks::make_lpi(lp);
  sim.run(2);
  auto& g = sim.grid();
  auto& interp = sim.interpolator();
  auto& acc = sim.accumulator();
  interp.load(sim.fields());

  for (const bool atomic : {true, false}) {
    const double secs = best_of(reps, [&] {
      acc.clear();
      auto& sp = sim.species(0);
      pk::Timer timer;
      for (index_t i = 0; i < sp.np; ++i) {
        core::Particle& p = sp.p(i);
        if (atomic)
          core::move_p<true>(p, 0.01f, 0.005f, -0.01f, -p.w, acc, g);
        else
          core::move_p<false>(p, 0.01f, 0.005f, -0.01f, -p.w, acc, g);
      }
      return timer.seconds();
    });
    std::printf("  %s deposit: %.3f ms for %lld particles\n",
                atomic ? "atomic" : "plain ", secs * 1e3,
                static_cast<long long>(sim.species(0).np));
  }

  // (c) ScatterView strategies: GPU-style atomics vs CPU-style per-thread
  // replication + contribute (VPIC 1.2's accumulator blocks).
  std::printf("\n(c) ScatterView: atomic vs duplicated (host, %lld adds "
              "over %lld slots):\n",
              static_cast<long long>(n), static_cast<long long>(unique));
  for (const auto strat :
       {pk::ScatterStrategy::Atomic, pk::ScatterStrategy::Duplicated}) {
    pk::View<double, 1> tgt("tgt", unique);
    pk::ScatterView<double> sv(tgt, strat);
    auto keys = gs::make_keys(gs::Pattern::Repeated, n, unique);
    const std::uint32_t* k = keys.data();
    const double secs = best_of(reps, [&] {
      pk::Timer timer;
      pk::parallel_for(n, [&, k](index_t i) { sv.access().add(k[i], 1.0); });
      sv.contribute();
      return timer.seconds();
    });
    std::printf("  %-10s %.3f ms (%zu replicas)\n",
                strat == pk::ScatterStrategy::Atomic ? "atomic" : "duplicated",
                secs * 1e3, sv.replica_count());
  }
  return 0;
}
