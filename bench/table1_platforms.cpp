// table1_platforms — reproduces Table 1: the platform matrix (core counts,
// memory, last-level cache, STREAM Triad bandwidth) used across the
// evaluation, plus a real STREAM Triad measurement of the host this
// reproduction runs on.
#include <vector>

#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "pk/pk.hpp"

namespace {

/// Measured STREAM Triad (a[i] = b[i] + s*c[i]) on the host.
double host_stream_triad_gbs(vpic::pk::index_t n, int reps) {
  using vpic::pk::index_t;
  vpic::pk::View<double, 1> a("a", n), b("b", n), c("c", n);
  vpic::pk::parallel_for(n, [&](index_t i) {
    b(i) = 1.0;
    c(i) = 2.0;
  });
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    vpic::pk::Timer t;
    double* PK_RESTRICT ap = a.data();
    const double* PK_RESTRICT bp = b.data();
    const double* PK_RESTRICT cp = c.data();
    vpic::pk::parallel_for(n, [=](index_t i) { ap[i] = bp[i] + 3.0 * cp[i]; });
    const double sec = t.seconds();
    const double gbs = 3.0 * static_cast<double>(n) * 8.0 / sec / 1e9;
    best = std::max(best, gbs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpic;
  const auto n = bench::flag(argc, argv, "n", 1 << 22);

  std::printf(
      "== Table 1: CPU and GPU specifications of the evaluated platforms "
      "==\n(registry values are the paper's Table 1; microarchitectural "
      "columns feed the analytic model)\n\n");
  bench::Table t({"Platform", "Kind", "Cores", "Mem (GB)", "LLC (MB)",
                  "STREAM Triad (GB/s)", "Warp", "Peak FP32 (GF/s)"});
  for (const auto& d : gpusim::device_table()) {
    t.row({d.name, d.is_gpu() ? "GPU" : "CPU", std::to_string(d.core_count),
           bench::fmt("%.0f", d.mem_gb), bench::fmt("%.0f", d.llc_mb),
           bench::fmt("%.2f", d.dram_bw_gbs), std::to_string(d.warp_size),
           bench::fmt("%.0f", d.peak_fp32_gflops)});
  }
  t.print();

  std::printf("\nHost STREAM Triad (measured, n=%lld doubles x3 arrays): ",
              static_cast<long long>(n));
  const double gbs = host_stream_triad_gbs(n, 5);
  std::printf("%.2f GB/s\n", gbs);
  return 0;
}
