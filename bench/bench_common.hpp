// bench/bench_common.hpp — shared helpers for the paper-figure harnesses:
// flag parsing (--n=, --quick) and fixed-width table printing so every
// bench emits the rows/series its figure reports.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace vpic::bench {

/// Parse "--name=value" style integer flags (also reads VPIC_BENCH_<NAME>
/// from the environment as a fallback).
inline std::int64_t flag(int argc, char** argv, const char* name,
                         std::int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atoll(argv[i] + prefix.size());
  }
  std::string env = "VPIC_BENCH_";
  for (const char* c = name; *c; ++c)
    env += static_cast<char>(std::toupper(*c));
  if (const char* v = std::getenv(env.c_str())) return std::atoll(v);
  return def;
}

inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string f = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (f == argv[i]) return true;
  return false;
}

/// String-valued "--name=value" flags (same VPIC_BENCH_<NAME> env
/// fallback as flag()).
inline std::string flag_str(int argc, char** argv, const char* name,
                            const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i] + prefix.size());
  }
  std::string env = "VPIC_BENCH_";
  for (const char* c = name; *c; ++c)
    env += static_cast<char>(std::toupper(*c));
  if (const char* v = std::getenv(env.c_str())) return std::string(v);
  return std::string(def);
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("| ");
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf("%-*s | ", static_cast<int>(w[c]), s.c_str());
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < w.size(); ++c) {
      for (std::size_t k = 0; k < w[c] + 2; ++k) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Repetition statistics. Benches report min-of-reps as the headline
/// number (least-noise estimate of the kernel's true cost) and the mean
/// alongside it so run-to-run variance is visible in the record.
struct Timing {
  double min_s = 1e300;
  double mean_s = 0;
  double max_s = 0;
  double total_s = 0;
  int reps = 0;

  void add_sample(double s) {
    if (s < min_s) min_s = s;
    if (s > max_s) max_s = s;
    total_s += s;
    ++reps;
    mean_s = total_s / reps;
  }
};

/// Time `f` over `reps` repetitions (after `warmup` untimed runs),
/// returning min/mean/max. `prep` runs untimed before every timed rep
/// (e.g. re-shuffling the input a sort bench is about to consume); pass
/// a no-op lambda when the workload is idempotent.
template <class F, class Prep>
Timing time_reps(int reps, int warmup, F&& f, Prep&& prep) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) {
    prep(i - warmup);
    f();
  }
  Timing t;
  for (int r = 0; r < std::max(1, reps); ++r) {
    prep(r);
    const auto t0 = clock::now();
    f();
    t.add_sample(std::chrono::duration<double>(clock::now() - t0).count());
  }
  return t;
}

template <class F>
Timing time_reps(int reps, int warmup, F&& f) {
  return time_reps(reps, warmup, static_cast<F&&>(f), [](int) {});
}

/// Collects every Json record a bench prints and writes them out as
/// `BENCH_<name>.json` (schema "vpic-bench-v1") when the process exits —
/// or earlier via emit_bench_json(). The destination directory is
/// $VPIC_BENCH_DIR when set, the working directory otherwise. Registration
/// happens inside Json::print(), so any bench that emits records gets a
/// machine-readable report file for free.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport r;
    return r;
  }

  void add(const std::string& bench, std::string record) {
    records_[bench].push_back(std::move(record));
  }

  [[nodiscard]] const std::vector<std::string>& records(
      const std::string& bench) const {
    static const std::vector<std::string> empty;
    auto it = records_.find(bench);
    return it == records_.end() ? empty : it->second;
  }

  /// Write BENCH_<bench>.json; returns the path, or "" when there are no
  /// records for `bench` or the file cannot be opened.
  std::string write(const std::string& bench) const {
    auto it = records_.find(bench);
    if (it == records_.end() || it->second.empty()) return "";
    std::string path;
    if (const char* dir = std::getenv("VPIC_BENCH_DIR")) {
      path = dir;
      if (!path.empty() && path.back() != '/') path += '/';
    }
    path += "BENCH_" + bench + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return "";
    }
    std::fprintf(f, "{\"schema\":\"vpic-bench-v1\",\"bench\":\"%s\","
                    "\"records\":[\n",
                 bench.c_str());
    for (std::size_t i = 0; i < it->second.size(); ++i)
      std::fprintf(f, " %s%s\n", it->second[i].c_str(),
                   i + 1 < it->second.size() ? "," : "");
    std::fprintf(f, "]}\n");
    std::fclose(f);
    return path;
  }

  void write_all() const {
    for (const auto& [bench, recs] : records_) {
      (void)recs;
      write(bench);
    }
  }

  ~BenchReport() { write_all(); }

 private:
  BenchReport() = default;
  std::map<std::string, std::vector<std::string>> records_;
};

/// One-line JSON record emitter. Benches print one record per measurement
/// (alongside the human-readable tables); print() also registers the
/// record with BenchReport, which writes the aggregate
/// `BENCH_<name>.json` at exit.
class Json {
 public:
  explicit Json(std::string bench) : bench_(std::move(bench)) {
    buf_ = "{\"bench\":\"" + bench_ + "\"";
  }
  Json& field(const char* k, const std::string& v) {
    buf_ += ",\"" + std::string(k) + "\":\"" + v + "\"";
    return *this;
  }
  Json& field(const char* k, const char* v) {
    return field(k, std::string(v));
  }
  Json& field(const char* k, double v) {
    char t[64];
    std::snprintf(t, sizeof(t), "%.6g", v);
    buf_ += ",\"" + std::string(k) + "\":" + t;
    return *this;
  }
  Json& field(const char* k, std::int64_t v) {
    buf_ += ",\"" + std::string(k) + "\":" + std::to_string(v);
    return *this;
  }
  Json& field(const char* k, int v) {
    return field(k, static_cast<std::int64_t>(v));
  }
  /// Record min-of-reps (the headline `<prefix>_ms`) plus mean and rep
  /// count for a timed section.
  Json& timing(const std::string& prefix, const Timing& t) {
    field((prefix + "_ms").c_str(), t.min_s * 1e3);
    field((prefix + "_mean_ms").c_str(), t.mean_s * 1e3);
    field((prefix + "_reps").c_str(), static_cast<std::int64_t>(t.reps));
    return *this;
  }
  [[nodiscard]] std::string str() const { return buf_ + "}"; }
  void print() const {
    const std::string rec = str();
    std::printf("%s\n", rec.c_str());
    BenchReport::instance().add(bench_, rec);
  }

 private:
  std::string bench_;
  std::string buf_;
};

/// Flush the collected records for `bench` to BENCH_<bench>.json now
/// (the BenchReport destructor also does this at exit). Returns the path
/// written, or "" when nothing was recorded.
inline std::string emit_bench_json(const std::string& bench) {
  return BenchReport::instance().write(bench);
}

/// Structural validation of a BENCH_*.json report against the
/// vpic-bench-v1 contract: parseable envelope, matching schema tag, a
/// bench name, and a non-empty record list. This is the same contract
/// tools/check_bench_schema.py enforces in CI over a BENCH_*.json glob;
/// benches call it on their own report before exiting so a contract break
/// fails locally, not first on a runner. Returns false and fills `err`
/// (when given) on the first violation.
inline bool validate_bench_report(const std::string& path,
                                  std::string* err = nullptr) {
  const auto fail = [&](const std::string& msg) {
    if (err) *err = path + ": " + msg;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return fail("cannot open");
  std::string text;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    text.append(buf, got);
  std::fclose(f);

  const auto trimmed_back = text.find_last_not_of(" \t\r\n");
  if (text.empty() || text.front() != '{' || trimmed_back == std::string::npos)
    return fail("not a JSON object");
  if (text.compare(trimmed_back - 1, 2, "]}") != 0)
    return fail("does not end with a closed record list");
  if (text.find("\"schema\":\"vpic-bench-v1\"") == std::string::npos)
    return fail("missing schema tag vpic-bench-v1");
  const auto bench_key = text.find("\"bench\":\"");
  if (bench_key == std::string::npos) return fail("missing bench name");
  const auto records = text.find("\"records\":[");
  if (records == std::string::npos) return fail("missing record list");
  const auto first_record = text.find_first_not_of(
      " \t\r\n", records + std::strlen("\"records\":["));
  if (first_record == std::string::npos || text[first_record] != '{')
    return fail("empty record list");
  return true;
}

}  // namespace vpic::bench
