// bench/bench_common.hpp — shared helpers for the paper-figure harnesses:
// flag parsing (--n=, --quick) and fixed-width table printing so every
// bench emits the rows/series its figure reports.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace vpic::bench {

/// Parse "--name=value" style integer flags (also reads VPIC_BENCH_<NAME>
/// from the environment as a fallback).
inline std::int64_t flag(int argc, char** argv, const char* name,
                         std::int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atoll(argv[i] + prefix.size());
  }
  std::string env = "VPIC_BENCH_";
  for (const char* c = name; *c; ++c)
    env += static_cast<char>(std::toupper(*c));
  if (const char* v = std::getenv(env.c_str())) return std::atoll(v);
  return def;
}

inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string f = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (f == argv[i]) return true;
  return false;
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("| ");
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf("%-*s | ", static_cast<int>(w[c]), s.c_str());
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < w.size(); ++c) {
      for (std::size_t k = 0; k < w[c] + 2; ++k) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// One-line JSON record emitter. Benches print one record per measurement
/// (alongside the human-readable tables) so driver scripts can collect
/// machine-readable `BENCH_<name>.json` files by grepping stdout for lines
/// starting with '{'.
class Json {
 public:
  explicit Json(const std::string& bench) {
    buf_ = "{\"bench\":\"" + bench + "\"";
  }
  Json& field(const char* k, const std::string& v) {
    buf_ += ",\"" + std::string(k) + "\":\"" + v + "\"";
    return *this;
  }
  Json& field(const char* k, const char* v) {
    return field(k, std::string(v));
  }
  Json& field(const char* k, double v) {
    char t[64];
    std::snprintf(t, sizeof(t), "%.6g", v);
    buf_ += ",\"" + std::string(k) + "\":" + t;
    return *this;
  }
  Json& field(const char* k, std::int64_t v) {
    buf_ += ",\"" + std::string(k) + "\":" + std::to_string(v);
    return *this;
  }
  Json& field(const char* k, int v) {
    return field(k, static_cast<std::int64_t>(v));
  }
  void print() const { std::printf("%s}\n", buf_.c_str()); }

 private:
  std::string buf_;
};

}  // namespace vpic::bench
