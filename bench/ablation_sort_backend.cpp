// ablation_sort_backend — design-choice ablation (DESIGN.md section 5):
// the strided / tiled-strided algorithms spend most of their time in
// sort_by_key (paper Section 4.3 uses Kokkos's). This harness compares the
// parallel LSD radix backend this repo implements against a comparison-
// based stable sort, across key-range widths (radix passes scale with key
// bits, comparison with log n).
#include <vector>

#include "bench_common.hpp"
#include "pk/pk.hpp"
#include "sort/radix.hpp"

namespace {

using namespace vpic;
using pk::index_t;

pk::View<std::uint32_t, 1> random_keys(index_t n, std::uint32_t max_key) {
  pk::View<std::uint32_t, 1> keys("keys", n);
  std::uint64_t state = 0x1234abcd;
  for (index_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    keys(i) = static_cast<std::uint32_t>((state >> 33) %
                                         (static_cast<std::uint64_t>(max_key) + 1));
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::flag(argc, argv, "n", 1 << 21);
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));

  std::printf(
      "== Ablation: sort_by_key backend (radix vs comparison), n=%lld ==\n\n",
      static_cast<long long>(n));
  bench::Table t({"key range", "radix (ms)", "comparison (ms)", "speedup"});
  for (const std::uint32_t max_key :
       {0xFFu, 0xFFFFu, 0xFFFFFFu, 0xFFFFFFFFu}) {
    double best_radix = 1e30, best_cmp = 1e30;
    for (int r = 0; r < reps; ++r) {
      {
        auto keys = random_keys(n, max_key);
        pk::View<std::uint32_t, 1> vals("v", n);
        pk::Timer timer;
        sort::sort_by_key(keys, vals);
        best_radix = std::min(best_radix, timer.seconds());
      }
      {
        auto keys = random_keys(n, max_key);
        pk::View<std::uint32_t, 1> vals("v", n);
        pk::Timer timer;
        sort::sort_by_key_comparison(keys, vals);
        best_cmp = std::min(best_cmp, timer.seconds());
      }
    }
    char range[32];
    std::snprintf(range, sizeof(range), "0..2^%d",
                  max_key == 0xFFu       ? 8
                  : max_key == 0xFFFFu   ? 16
                  : max_key == 0xFFFFFFu ? 24
                                         : 32);
    t.row({range, bench::fmt("%.2f", best_radix * 1e3),
           bench::fmt("%.2f", best_cmp * 1e3),
           bench::fmt("%.2fx", best_cmp / best_radix)});
  }
  t.print();
  std::printf(
      "\nNarrow key ranges (cell indices!) need fewer radix passes, so the\n"
      "radix backend wins most where the PIC engine uses it.\n");
  return 0;
}
