// layout_autotune — per-particle-layout push and sort timings, plus the
// startup autotuner's derived dispatch crossovers (src/tune). For each of
// AoS / SoA / AoSoA it times, on the same cell-sorted LPI deck the
// push_pipeline bench uses:
//
//   * the generic vs run-aware Manual push, and the path AutoDetect picks
//     under the probe-derived gates (core::active_push_gates);
//   * the counting vs radix sort pipeline, and the path the measured
//     sort::active_sort_model() picks;
//
// and emits one JSON record per layout into BENCH_layout_autotune.json
// (schema vpic-bench-v1) with the tuned gate values alongside the raw
// timings, so a reader can audit the crossovers against the measurements.
//
// Flags: --nx/--ny/--nz/--ppc (deck size), --reps, --smoke. With --smoke
// the bench exits non-zero if the autotuned dispatch picks a path
// measurably slower (> kSmokeTolerance) than the alternative it rejected —
// the CI guard that a bad calibration cannot regress the hot path.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "prof/prof.hpp"
#include "sort/runs.hpp"
#include "tune/tune.hpp"

namespace {

namespace core = vpic::core;
namespace bench = vpic::bench;
namespace tune = vpic::tune;
namespace pk = vpic::pk;
using pk::index_t;

// Dispatch is "measurably slower" when the chosen path exceeds the
// rejected one by more than this factor (generous: rep noise on a loaded
// CI runner must not flake the guard).
constexpr double kSmokeTolerance = 1.25;

struct Snapshot {
  std::vector<std::vector<core::Particle>> p;  // canonical AoS records
  std::vector<index_t> np;
};

Snapshot take_snapshot(core::Simulation& sim) {
  Snapshot s;
  for (std::size_t i = 0; i < sim.num_species(); ++i) {
    auto& sp = sim.species(i);
    std::vector<core::Particle> copy(static_cast<std::size_t>(sp.np));
    sp.p.export_aos(copy.data(), sp.np);
    s.p.push_back(std::move(copy));
    s.np.push_back(sp.np);
  }
  return s;
}

void restore_snapshot(core::Simulation& sim, const Snapshot& s) {
  for (std::size_t i = 0; i < sim.num_species(); ++i) {
    auto& sp = sim.species(i);
    sp.p.import_aos(s.p[i].data(), s.np[i]);
    sp.np = s.np[i];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = static_cast<int>(bench::flag(argc, argv, "nx", 48));
  const int ny = static_cast<int>(bench::flag(argc, argv, "ny", 24));
  const int nz = static_cast<int>(bench::flag(argc, argv, "nz", 24));
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 16));
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 5));
  const bool smoke = bench::has_flag(argc, argv, "smoke");

  // Calibrate before anything is timed (the Simulation constructor would
  // do it anyway; doing it here makes the provenance printable).
  const tune::TuneState& ts = tune::ensure_initialized();
  std::printf(
      "== layout_autotune: per-layout push/sort timings under autotuned "
      "dispatch ==\nLPI deck %dx%dx%d, ppc %d, %d reps\n"
      "tuner: source=%s fingerprint=\"%s\"\n\n",
      nx, ny, nz, ppc, reps, tune::to_string(ts.source),
      ts.fingerprint.c_str());

  bench::Table t({"layout", "particles", "generic (ms)", "run-aware (ms)",
                  "auto picks", "sort count (ms)", "sort radix (ms)",
                  "model picks", "dispatch ok"});
  bool ok = true;

  for (const core::ParticleLayout layout : core::kAllParticleLayouts) {
    core::decks::LpiParams p;
    p.nx = nx;
    p.ny = ny;
    p.nz = nz;
    p.ppc = ppc;
    p.strategy = core::VectorStrategy::Manual;
    p.sort_interval = 0;  // sorts are timed explicitly below
    p.layout = layout;
    auto sim = core::decks::make_lpi(p);
    sim.run(2);  // realistic fields + phase-mixed distribution

    // Phase-mixed order for the sort timings...
    const Snapshot mixed = take_snapshot(sim);
    index_t total_np = 0;
    for (std::size_t s = 0; s < sim.num_species(); ++s)
      total_np += sim.species(s).np;
    const index_t nv = sim.grid().nv();
    const int nthreads = pk::DefaultExecSpace::concurrency();

    // ...then cell-sorted order for the push timings.
    for (std::size_t s = 0; s < sim.num_species(); ++s)
      core::sort_particles(sim.species(s), vpic::sort::SortOrder::Standard,
                           0, 1, nv);
    sim.interpolator().load(sim.fields());
    const Snapshot sorted = take_snapshot(sim);
    auto& interp = sim.interpolator();
    auto& acc = sim.accumulator();

    auto time_push = [&](core::PushPath path) {
      return bench::time_reps(
          reps, 1,
          [&] {
            for (std::size_t s = 0; s < sim.num_species(); ++s)
              core::advance_species(sim.species(s), interp, acc, sim.grid(),
                                    core::VectorStrategy::Manual, {}, path);
          },
          [&](int) {
            restore_snapshot(sim, sorted);
            for (std::size_t s = 0; s < sim.num_species(); ++s)
              sim.species(s).mark_sorted(true);
            acc.clear();
          });
    };
    const bench::Timing tm_gen = time_push(core::PushPath::Generic);
    const bench::Timing tm_run = time_push(core::PushPath::RunAware);

    // The AutoDetect decision under the tuned gates, observed through the
    // prof counters every dispatch fires.
    restore_snapshot(sim, sorted);
    for (std::size_t s = 0; s < sim.num_species(); ++s)
      sim.species(s).mark_sorted(true);
    acc.clear();
    const std::uint64_t run_before =
        vpic::prof::counter_value("push.dispatch.run_aware");
    core::PushPath auto_path = core::PushPath::Generic;
    for (std::size_t s = 0; s < sim.num_species(); ++s)
      auto_path = core::advance_species(sim.species(s), interp, acc,
                                        sim.grid(),
                                        core::VectorStrategy::Manual, {},
                                        core::PushPath::AutoDetect);
    const bool counters_saw_run_aware =
        vpic::prof::counter_value("push.dispatch.run_aware") > run_before;
    (void)counters_saw_run_aware;

    const double auto_ms = (auto_path == core::PushPath::RunAware
                                ? tm_run.min_s
                                : tm_gen.min_s) *
                           1e3;
    const double push_best_ms =
        std::min(tm_gen.min_s, tm_run.min_s) * 1e3;
    const bool push_ok = auto_ms <= push_best_ms * kSmokeTolerance;

    // Sort: time the full sort_particles pipeline with the dispatch model
    // pinned to each side of the crossover, then restore the tuned model
    // and record which side it picks for this (n, nv, threads).
    const vpic::sort::SortDispatchModel tuned =
        vpic::sort::active_sort_model();
    auto time_sort = [&](const vpic::sort::SortDispatchModel& m) {
      vpic::sort::active_sort_model() = m;
      auto tm = bench::time_reps(
          reps, 1,
          [&] {
            for (std::size_t s = 0; s < sim.num_species(); ++s)
              core::sort_particles(sim.species(s),
                                   vpic::sort::SortOrder::Standard, 0, 1,
                                   nv);
          },
          [&](int) { restore_snapshot(sim, mixed); });
      vpic::sort::active_sort_model() = tuned;
      return tm;
    };
    vpic::sort::SortDispatchModel always_counting;
    always_counting.cells_per_n = 1.0;
    always_counting.cells_floor = 1e18;  // budget never binds
    vpic::sort::SortDispatchModel never_counting;
    never_counting.cells_per_n = 1e-18;
    never_counting.cells_floor = 0;  // budget always binds
    const bench::Timing tm_count = time_sort(always_counting);
    const bench::Timing tm_radix = time_sort(never_counting);

    const bool model_counting = vpic::sort::counting_sort_applicable(
        total_np, static_cast<std::uint64_t>(nv), nthreads);
    const double sort_chosen_ms =
        (model_counting ? tm_count.min_s : tm_radix.min_s) * 1e3;
    const double sort_best_ms =
        std::min(tm_count.min_s, tm_radix.min_s) * 1e3;
    const bool sort_ok = sort_chosen_ms <= sort_best_ms * kSmokeTolerance;

    ok = ok && push_ok && sort_ok;

    const core::PushGates gates = core::active_push_gates(layout);
    t.row({core::to_string(layout), std::to_string(total_np),
           bench::fmt("%.3f", tm_gen.min_s * 1e3),
           bench::fmt("%.3f", tm_run.min_s * 1e3),
           core::to_string(auto_path),
           bench::fmt("%.3f", tm_count.min_s * 1e3),
           bench::fmt("%.3f", tm_radix.min_s * 1e3),
           model_counting ? "counting" : "radix",
           (push_ok && sort_ok) ? "yes" : "NO"});

    bench::Json j("layout_autotune");
    j.field("layout", core::to_string(layout))
        .field("particles", static_cast<std::int64_t>(total_np))
        .field("tune_source", tune::to_string(ts.source))
        .timing("push_generic", tm_gen)
        .timing("push_run_aware", tm_run)
        .field("push_speedup", tm_gen.min_s / tm_run.min_s)
        .field("push_auto_path", core::to_string(auto_path))
        .field("push_dispatch_ok", push_ok ? 1 : 0)
        .timing("sort_counting", tm_count)
        .timing("sort_radix", tm_radix)
        .field("sort_model_path", model_counting ? "counting" : "radix")
        .field("sort_dispatch_ok", sort_ok ? 1 : 0)
        .field("tuned_min_particles",
               static_cast<std::int64_t>(gates.min_particles))
        .field("tuned_max_stale", gates.max_stale)
        .field("tuned_min_mean_run", gates.min_mean_run)
        .field("tuned_cells_per_n", tuned.cells_per_n)
        .field("tuned_cells_floor", tuned.cells_floor);
    j.print();
  }

  std::printf("\n");
  t.print();
  const std::string path = bench::emit_bench_json("layout_autotune");
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());

  if (smoke && !ok) {
    std::fprintf(stderr,
                 "\nsmoke FAILED: autotuned dispatch picked a path > %.0f%% "
                 "slower than the rejected alternative\n",
                 (kSmokeTolerance - 1.0) * 100);
    return 1;
  }
  std::printf("\nautotuned dispatch %s\n",
              ok ? "picked the faster path everywhere"
                 : "picked a slower path somewhere (informational without "
                   "--smoke)");
  return 0;
}
