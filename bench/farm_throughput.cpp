// bench/farm_throughput.cpp — multi-tenant farm throughput and fairness
// (docs/FARM.md): the same batch of jobs is run through farm::Scheduler
// at increasing tenant budgets (workers), measuring batch wall time,
// jobs/hour, and the p50/p95 submit-to-completion latency at each budget.
// A separate mixed-weight run under one contended worker measures the
// scheduler's weighted fairness as a Jain index over weight-normalized
// service.
//
// Jobs are fault-tolerant tenants, not bare step loops: each keeps the
// engine's standard periodic checkpoint ring live (sync commit — encode,
// write, fsync file + directory), streams durable in-situ diagnostics
// (fsynced energy/history/probe frames per slice), and drains every
// committed snapshot to an archival consumer, blocking until the
// archiver acks the durable copy. The archiver models a bounded
// per-stream bandwidth (--archive_mbps) the way bench/step_overlap.cpp
// models link latency (--latency_us): an explicit knob standing in for
// the burst buffer / campaign storage behind a real farm, not a
// measurement of this host's disk. Those blocking commits and archival
// waits are the second axis of the farm's win: tenants overlap one job's
// I/O stall with another's compute, so batch jobs/hour scales past the
// serial baseline even on a single core; on multi-core machines kernel
// parallelism across workers stacks on top.
//
// Kernel teams are pinned to --kernel_threads (default 1) so tenant
// concurrency — not intra-kernel OpenMP — is what scales across cores;
// this is the farm's deployment model for batches of small decks.
//
//   ./farm_throughput --jobs=8 --steps=48 --slice=8 --tenants=1,2,4,8
//   ./farm_throughput --smoke        # CI-sized: fewer jobs, fewer steps
//
// Emits BENCH_farm.json (schema vpic-bench-v1) and self-validates it with
// the shared validator before exiting. The headline summary record
// carries speedup_4x = jobs/hour at 4 tenants over the serial baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "ckpt/ring.hpp"
#include "core/core.hpp"
#include "farm/farm.hpp"
#include "pk/pk.hpp"

namespace bench = vpic::bench;
namespace ckpt = vpic::ckpt;
namespace core = vpic::core;
namespace farm = vpic::farm;
namespace pk = vpic::pk;
namespace fs = std::filesystem;

namespace {

struct Params {
  int jobs, steps, slice, ppc, reps;
  double archive_mbps;
  std::vector<int> tenants;
};

/// Snapshots can exceed the steering protocol's 1 MB frame ceiling, so
/// the archival stream uses its own.
constexpr std::size_t kArchiveMaxFrame = std::size_t{64} << 20;

/// In-situ archival consumer: accepts localhost connections carrying
/// length-prefixed snapshot frames (farm::wire) and acks each frame only
/// after a modeled durable commit at a fixed per-stream bandwidth. The
/// bandwidth is an explicit model knob — it stands in for the per-stream
/// share of a burst buffer or campaign store, so the blocking wait a
/// tenant spends in archive_latest() is deterministic and the overlap
/// win the farm earns is reproducible across hosts.
class Archiver {
 public:
  explicit Archiver(double mbps) : mbps_(mbps) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd_, 64) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Archiver() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
      for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& t : threads_)
      if (t.joinable()) t.join();
    for (int fd : fds_) ::close(fd);
  }

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t bytes_archived() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      fds_.push_back(fd);
      threads_.emplace_back([this, fd] { serve(fd); });
    }
  }

  void serve(int fd) {
    std::string frame;
    while (farm::wire::recv_frame(fd, frame, kArchiveMaxFrame)) {
      // Modeled durable commit: this stream's share of archival
      // bandwidth. The archiver sleeps, so on an oversubscribed node the
      // wait costs no CPU — exactly the stall tenancy can overlap.
      const double secs = static_cast<double>(frame.size()) / (mbps_ * 1e6);
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
      bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
      if (!farm::wire::send_frame(fd, "ok")) break;
    }
  }

  double mbps_;
  std::atomic<std::uint64_t> bytes_{0};
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> fds_;
  std::vector<std::thread> threads_;
  std::thread acceptor_;
};

/// Per-job archival stream: reads the newest committed generation of the
/// job's checkpoint ring and blocks until the archiver acks the copy.
/// One client per job, touched only by the worker currently running that
/// job (the scheduler serializes a job's slices).
class ArchiveClient {
 public:
  explicit ArchiveClient(int port) : port_(port) {}
  ~ArchiveClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void archive_latest(const std::string& ring_base) {
    if (port_ <= 0) return;
    const ckpt::GenerationRing ring(ring_base);
    const auto gens = ring.generations();
    if (gens.empty() || gens.back() == last_gen_) return;
    std::ifstream in(ring.path_for(gens.back()), std::ios::binary);
    if (!in) return;
    const std::string bytes(std::istreambuf_iterator<char>(in), {});
    if (fd_ < 0) connect_();
    if (fd_ < 0) return;
    std::string ack;
    if (!farm::wire::send_frame(fd_, bytes) ||
        !farm::wire::recv_frame(fd_, ack, 64)) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    last_gen_ = gens.back();
  }

 private:
  void connect_() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      return;
    }
    fd_ = fd;
  }

  int port_;
  int fd_ = -1;
  std::uint64_t last_gen_ = ~std::uint64_t{0};
};

/// Append one record to a diagnostics channel and fsync it — each frame
/// is durable the moment the slice ends, so a steering client or a
/// post-crash analysis never reads a torn stream. The blocking fsync is
/// deliberate: it is the I/O stall the multi-tenant schedule overlaps
/// with other jobs' compute.
void durable_append(const fs::path& path, const char* line, int n) {
  if (n <= 0) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  [[maybe_unused]] const auto w = ::write(fd, line, static_cast<size_t>(n));
  ::fsync(fd);
  ::close(fd);
}

/// Durable in-situ diagnostics, three channels per slice (the classic
/// in-situ split: scalar energies, conservation history, a probe series),
/// closed out by one directory fsync covering any first-frame creates.
void write_diag_frame(const fs::path& dir, const std::string& job,
                      const core::Simulation& sim) {
  const auto e = sim.energies();
  const auto step = static_cast<long long>(sim.step_count());
  char line[256];
  int n = std::snprintf(line, sizeof line, "%lld %.9e %zu\n", step, e.field,
                        e.species.size());
  durable_append(dir / (job + ".energy"), line, n);
  n = std::snprintf(line, sizeof line, "%lld %.9e\n", step,
                    sim.energy_history().max_relative_drift());
  durable_append(dir / (job + ".history"), line, n);
  n = std::snprintf(line, sizeof line, "%lld %.9e %.9e\n", step,
                    e.species.empty() ? 0.0 : e.species[0],
                    e.species.size() > 1 ? e.species[1] : 0.0);
  durable_append(dir / (job + ".probe"), line, n);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Job mix: small LPI decks with per-job seeds, every 4th job a small
/// magnetic-reconnection deck — two deck families as a real batch would
/// mix, all cheap enough for many tenant sweeps. Each job streams durable
/// diagnostics into `diag_dir` after every slice.
farm::JobSpec make_job(const Params& p, int i, const fs::path& diag_dir,
                       int archive_port) {
  farm::JobSpec spec;
  spec.name = "job" + std::to_string(i);
  spec.total_steps = p.steps;
  const std::string job = spec.name;
  // Fault tolerance every quantum: the deck maintains its own sync
  // checkpoint ring (distinct from the farm's preemption ring), so a
  // crash costs at most one slice of any tenant's progress. Each
  // committed generation is drained to the archiver before the next
  // slice runs.
  const std::string ck_base = (diag_dir / (job + ".ck")).string();
  auto client = std::make_shared<ArchiveClient>(archive_port);
  spec.on_slice = [diag_dir, job, ck_base,
                   client](const core::Simulation& sim) {
    write_diag_frame(diag_dir, job, sim);
    client->archive_latest(ck_base);
  };
  const int every = p.slice;
  const int ppc = p.ppc;
  auto durable = [ck_base, every](core::Simulation sim) {
    sim.config().checkpoint_every = every;
    sim.config().checkpoint_path = ck_base;
    sim.config().checkpoint_keep_last = 2;
    return sim;
  };
  if (i % 4 == 3) {
    spec.make = [durable, ppc] {
      core::decks::ReconnectionParams rp;
      rp.nx = 16;
      rp.ny = 4;
      rp.nz = 8;
      rp.ppc = ppc;
      return durable(core::decks::make_reconnection(rp));
    };
  } else {
    const auto seed = static_cast<std::uint64_t>(100 + i);
    spec.make = [durable, seed, ppc] {
      core::decks::LpiParams lp;
      lp.nx = 16;
      lp.ny = 4;
      lp.nz = 8;
      lp.ppc = ppc;
      lp.sort_interval = 10;
      lp.seed = seed;
      return durable(core::decks::make_lpi(lp));
    };
  }
  return spec;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct TenantResult {
  double wall_s = 0;
  double jobs_per_hour = 0;
  double p50_s = 0;
  double p95_s = 0;
  double archived_mb = 0;
};

TenantResult run_tenants(const Params& p, int tenants) {
  const fs::path dir =
      fs::temp_directory_path() / ("vpic_farm_bench_" + std::to_string(tenants));
  fs::remove_all(dir);
  const fs::path diag_dir = dir / "diag";
  fs::create_directories(diag_dir);
  farm::Scheduler::Options opt;
  opt.max_concurrent = tenants;
  opt.slice_steps = p.slice;
  opt.ring_dir = dir.string();

  Archiver archiver(p.archive_mbps);
  TenantResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> latencies;
  {
    farm::Scheduler s(opt);
    for (int i = 0; i < p.jobs; ++i)
      s.submit(make_job(p, i, diag_dir, archiver.port()));
    for (int i = 0; i < p.jobs; ++i) {
      const auto st = s.wait("job" + std::to_string(i));
      if (!st || st->state != farm::JobState::Completed) {
        std::fprintf(stderr, "farm bench: job %d did not complete: %s\n", i,
                     st ? st->error.c_str() : "unknown job");
        std::exit(1);
      }
      latencies.push_back(st->latency_s);
    }
  }
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.jobs_per_hour = static_cast<double>(p.jobs) / (r.wall_s / 3600.0);
  r.p50_s = percentile(latencies, 0.50);
  r.p95_s = percentile(latencies, 0.95);
  r.archived_mb =
      static_cast<double>(archiver.bytes_archived()) / (1024.0 * 1024.0);
  fs::remove_all(dir);
  return r;
}

/// Weighted fairness under contention: mixed-weight, mixed-priority jobs
/// with an effectively unbounded step budget share one worker for a fixed
/// window; the Jain index of weight-normalized service within the top
/// priority class measures how close the scheduler gets to the WFQ ideal
/// (1.0 = every job received exactly weight-proportional steps).
double run_fairness(const Params& p, std::int64_t* low_prio_steps) {
  const fs::path dir = fs::temp_directory_path() / "vpic_farm_bench_fair";
  fs::remove_all(dir);
  const fs::path diag_dir = dir / "diag";
  fs::create_directories(diag_dir);
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = p.slice;
  opt.ring_dir = dir.string();

  const int weights[] = {1, 2, 3, 2, 1};
  const int n = 5;
  std::vector<double> normalized;
  std::int64_t low_steps = 0;
  Archiver archiver(p.archive_mbps);
  {
    farm::Scheduler s(opt);
    for (int i = 0; i < n; ++i) {
      farm::JobSpec spec = make_job(p, i, diag_dir, archiver.port());
      spec.name = "fair" + std::to_string(i);
      spec.total_steps = 1000000000;  // runs until cancelled
      spec.weight = weights[i];
      s.submit(spec);
    }
    // A starved background class: strict priority means it should see
    // (almost) no service while the higher class is runnable.
    farm::JobSpec bg = make_job(p, 1, diag_dir, archiver.port());
    bg.name = "background";
    bg.total_steps = 1000000000;
    bg.priority = -1;
    s.submit(bg);

    const int window_ms = p.steps * 20;
    std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
    for (int i = 0; i < n; ++i) {
      const auto st = s.status("fair" + std::to_string(i));
      normalized.push_back(static_cast<double>(st->step) / weights[i]);
    }
    low_steps = s.status("background")->step;
    for (int i = 0; i < n; ++i)
      s.cancel("fair" + std::to_string(i), /*drop_checkpoints=*/true);
    s.cancel("background", true);
    s.wait_idle();
  }
  fs::remove_all(dir);
  if (low_prio_steps) *low_prio_steps = low_steps;
  double sum = 0, sum_sq = 0;
  for (double x : normalized) {
    sum += x;
    sum_sq += x * x;
  }
  return sum_sq > 0 ? (sum * sum) / (n * sum_sq) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "smoke");
  Params p;
  p.jobs = static_cast<int>(bench::flag(argc, argv, "jobs", smoke ? 4 : 8));
  p.steps =
      static_cast<int>(bench::flag(argc, argv, "steps", smoke ? 16 : 48));
  p.slice = static_cast<int>(bench::flag(argc, argv, "slice", 8));
  p.ppc = static_cast<int>(bench::flag(argc, argv, "ppc", smoke ? 2 : 4));
  p.reps = static_cast<int>(bench::flag(argc, argv, "reps", smoke ? 1 : 3));
  p.archive_mbps =
      static_cast<double>(bench::flag(argc, argv, "archive_mbps", 32));
  const std::string tenants_csv = bench::flag_str(
      argc, argv, "tenants", smoke ? "1,2,4" : "1,2,4,8");
  for (std::size_t pos = 0; pos < tenants_csv.size();) {
    const auto comma = tenants_csv.find(',', pos);
    p.tenants.push_back(std::atoi(tenants_csv.c_str() + pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  pk::initialize(
      static_cast<int>(bench::flag(argc, argv, "kernel_threads", 1)));

  std::printf(
      "farm throughput bench: %d jobs x %d steps, slice=%d, tenants=%s%s\n\n",
      p.jobs, p.steps, p.slice, tenants_csv.c_str(), smoke ? " (smoke)" : "");

  bench::Table t({"tenants", "wall s", "jobs/hour", "p50 s", "p95 s"});
  double serial_jph = 0, four_jph = 0;
  for (int tenants : p.tenants) {
    // Min-wall-of-reps, the repo's standard headline: filesystem commit
    // latency is the noisiest input here and spikes only upward.
    TenantResult r = run_tenants(p, tenants);
    for (int rep = 1; rep < p.reps; ++rep) {
      const TenantResult cand = run_tenants(p, tenants);
      if (cand.wall_s < r.wall_s) r = cand;
    }
    if (tenants == 1) serial_jph = r.jobs_per_hour;
    if (tenants == 4) four_jph = r.jobs_per_hour;
    t.row({std::to_string(tenants), bench::fmt("%.3f", r.wall_s),
           bench::fmt("%.1f", r.jobs_per_hour), bench::fmt("%.3f", r.p50_s),
           bench::fmt("%.3f", r.p95_s)});
    bench::Json("farm")
        .field("tenants", tenants)
        .field("jobs", p.jobs)
        .field("steps_per_job", p.steps)
        .field("slice_steps", p.slice)
        .field("archive_mbps", p.archive_mbps)
        .field("archived_mb", r.archived_mb)
        .field("wall_s", r.wall_s)
        .field("jobs_per_hour", r.jobs_per_hour)
        .field("p50_latency_s", r.p50_s)
        .field("p95_latency_s", r.p95_s)
        .print();
  }
  t.print();

  std::int64_t background_steps = 0;
  const double jain = run_fairness(p, &background_steps);
  std::printf("\nweighted fairness (Jain index, 1 contended worker): %.4f\n",
              jain);
  std::printf("strict-priority background job steps in window: %lld\n",
              static_cast<long long>(background_steps));

  const double speedup_4x = serial_jph > 0 ? four_jph / serial_jph : 0;
  if (four_jph > 0)
    std::printf("4-tenant speedup over serial: %.2fx\n", speedup_4x);
  bench::Json("farm")
      .field("summary", 1)
      .field("jobs", p.jobs)
      .field("fairness_jain", jain)
      .field("background_steps", background_steps)
      .field("speedup_4x", speedup_4x)
      .print();

  const std::string path = bench::emit_bench_json("farm");
  std::string err;
  if (path.empty() || !bench::validate_bench_report(path, &err)) {
    std::fprintf(stderr, "bench report validation failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("\nwrote %s (schema vpic-bench-v1, validated)\n", path.c_str());
  return 0;
}
