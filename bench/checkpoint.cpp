// bench/checkpoint.cpp — per-step cost of checkpointing (docs/CHECKPOINT.md,
// docs/ELASTIC.md): the same LPI run stepped three ways — no checkpoints
// (baseline), periodic synchronous checkpoints (the step blocks for encode +
// file commit), and periodic asynchronous checkpoints (the step pays only the
// deep-copy encode; the commit runs on a background pk::Instance). The
// headline numbers are the per-checkpoint overhead of each mode over the
// baseline and the fraction of the sync cost the async path hides.
//
// The elastic extension measures the incremental delta path on a slow-churn
// deck (cold plasma, no laser): full-vs-delta generation size ratio, the
// DeltaPack particle-payload compression ratio and its encode overhead
// against a full checkpoint commit, the async hidden fraction of the delta
// path, and an in-process N→M proof — a 4-rank distributed checkpoint
// redecomposed and restored on 1, 2, 3 and 8 ranks.
//
//   ./checkpoint --nx=16 --ny=8 --nz=8 --ppc=4 --steps=40 --every=5 --reps=3
//   ./checkpoint --smoke        # CI-sized run, bars recorded but not enforced
//
// Emits BENCH_checkpoint.json (schema vpic-bench-v1) and self-validates it
// with the shared validator before exiting. Full (non-smoke) runs also
// enforce the elastic bars: incremental ratio >= 3x, codec ratio >= 1.5x at
// < 10% encode overhead.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/ckpt.hpp"
#include "core/core.hpp"
#include "elastic/elastic.hpp"
#include "minimpi/minimpi.hpp"

namespace core = vpic::core;
namespace ckpt = vpic::ckpt;
namespace bench = vpic::bench;
namespace elastic = vpic::elastic;
namespace mpi = vpic::mpi;
namespace fs = std::filesystem;

namespace {

struct Params {
  int nx, ny, nz, ppc, steps, every, full_every, reps;
};

core::Simulation make_sim(const Params& p, bool slow_churn = false) {
  core::decks::LpiParams lpi;
  lpi.nx = p.nx;
  lpi.ny = p.ny;
  lpi.nz = p.nz;
  lpi.ppc = p.ppc;
  lpi.sort_interval = 10;
  if (slow_churn) {
    // Cold plasma at rest, antenna off: between generations almost no
    // section content changes, which is the regime the incremental delta
    // path exists for (docs/ELASTIC.md). The sort is pushed past the run
    // so it never rewrites the (unchanged) particle chunks.
    lpi.uth_e = 0;
    lpi.uth_i = 0;
    lpi.laser_amplitude = 0;
    lpi.sort_interval = 1000000;
  }
  auto sim = core::decks::make_lpi(lpi);
  sim.config().energy_interval = 10;
  return sim;
}

struct ModeResult {
  bench::Timing timing;
  std::int64_t checkpoints = 0;
  std::uint64_t file_bytes = 0;
  core::ElasticCkptStats stats;  // zeroed unless the mode is incremental
};

/// Time `steps` steps under one checkpoint mode: "none", "sync", "async"
/// on the regular deck; "slow-none", "inc", "inc-async" on the slow-churn
/// deck (incremental generations for the latter two).
ModeResult run_mode(const Params& p, const std::string& mode) {
  const bool slow = mode == "slow-none" || mode == "inc" ||
                    mode == "inc-async";
  const bool inc = mode == "inc" || mode == "inc-async";
  const fs::path dir =
      fs::temp_directory_path() / ("vpic_ckpt_bench_" + mode);
  ModeResult out;
  std::optional<core::Simulation> sim;
  out.timing = bench::time_reps(
      p.reps, /*warmup=*/1,
      [&] {
        sim->run(p.steps);
        sim->checkpoint_wait();
      },
      [&](int) {
        fs::remove_all(dir);
        fs::create_directories(dir);
        sim.emplace(make_sim(p, slow));
        if (mode != "none" && mode != "slow-none") {
          sim->config().checkpoint_every = p.every;
          sim->config().checkpoint_path = (dir / "ck").string();
          sim->config().checkpoint_async =
              mode == "async" || mode == "inc-async";
          if (inc) {
            sim->config().checkpoint_incremental = true;
            sim->config().checkpoint_full_every = p.full_every;
            sim->config().checkpoint_keep_last = 64;  // keep every chain
          }
        }
      });
  out.checkpoints = sim->checkpoints_written();
  out.stats = sim->elastic_ckpt_stats();
  ckpt::GenerationRing ring((dir / "ck").string(), 3);
  for (std::uint64_t g : ring.generations())
    out.file_bytes = fs::file_size(ring.path_for(g));
  fs::remove_all(dir);
  return out;
}

/// In-process N→M proof: a 4-rank distributed checkpoint restored through
/// the rescale path on 1, 2, 3 and 8 ranks (minimpi ranks are threads).
/// Returns how many target shapes restored with the right step count and
/// globally conserved particle count.
int verify_nm_restart() {
  core::DomainConfig cfg;
  cfg.nx = 4;
  cfg.ny = 4;
  cfg.nz = 24;  // divisible by every tested rank count
  cfg.lx = 4;
  cfg.ly = 4;
  cfg.lz = 24;
  cfg.seed = 7;
  cfg.overlap = false;
  const fs::path dir = fs::temp_directory_path() / "vpic_ckpt_bench_nm";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string ck = (dir / "set").string();
  std::int64_t np4 = 0;
  mpi::run(4, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f, 0.0f, 0.0f, 0.1f);
    sim.run(4);
    sim.checkpoint(ck);
    const std::int64_t np = sim.global_np(0);
    if (comm.rank() == 0) np4 = np;
  });
  int verified = 0;
  for (const int m : {1, 2, 3, 8}) {
    std::int64_t good = 0;
    try {
      mpi::run(m, [&](mpi::Comm& comm) {
        core::DistributedSimulation sim(cfg, comm);
        sim.add_species("e", -1.0f, 1.0f, 8000);
        sim.restore_rescaled(ck);
        const std::int64_t np = sim.global_np(0);
        if (comm.rank() == 0 && sim.step_count() == 4 && np == np4)
          good = 1;
      });
    } catch (...) {
      good = 0;
    }
    verified += static_cast<int>(good);
  }
  fs::remove_all(dir);
  return verified;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  p.nx = static_cast<int>(bench::flag(argc, argv, "nx", 16));
  p.ny = static_cast<int>(bench::flag(argc, argv, "ny", 8));
  p.nz = static_cast<int>(bench::flag(argc, argv, "nz", 8));
  p.ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 4));
  p.steps = static_cast<int>(bench::flag(argc, argv, "steps", 40));
  p.every = static_cast<int>(bench::flag(argc, argv, "every", 5));
  p.full_every = static_cast<int>(bench::flag(argc, argv, "full_every", 4));
  p.reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));
  const bool smoke = bench::has_flag(argc, argv, "smoke");
  if (smoke) {
    p.steps = std::min(p.steps, 20);
    p.reps = 1;
  }

  std::printf(
      "checkpoint bench: %dx%dx%d ppc=%d, %d steps, checkpoint every %d "
      "(full every %d), %d reps%s\n\n",
      p.nx, p.ny, p.nz, p.ppc, p.steps, p.every, p.full_every, p.reps,
      smoke ? " [smoke]" : "");

  const ModeResult none = run_mode(p, "none");
  const ModeResult sync = run_mode(p, "sync");
  const ModeResult async_ = run_mode(p, "async");
  const ModeResult slow_none = run_mode(p, "slow-none");
  const ModeResult inc = run_mode(p, "inc");
  const ModeResult inc_async = run_mode(p, "inc-async");

  bench::Table t({"mode", "total ms", "ms/step", "ckpts", "file KiB"});
  const auto row = [&](const char* mode, const ModeResult& r) {
    t.row({mode, bench::fmt("%.3f", r.timing.min_s * 1e3),
           bench::fmt("%.4f", r.timing.min_s * 1e3 / p.steps),
           std::to_string(r.checkpoints),
           bench::fmt("%.1f", static_cast<double>(r.file_bytes) / 1024.0)});
    auto j = vpic::bench::Json("checkpoint");
    j.field("mode", mode)
        .field("steps", p.steps)
        .field("every", p.every)
        .field("checkpoints", r.checkpoints)
        .field("file_bytes", static_cast<std::int64_t>(r.file_bytes));
    if (r.stats.full_generations + r.stats.delta_generations > 0) {
      j.field("full_generations", r.stats.full_generations)
          .field("delta_generations", r.stats.delta_generations)
          .field("full_file_bytes",
                 static_cast<std::int64_t>(r.stats.full_file_bytes))
          .field("delta_file_bytes",
                 static_cast<std::int64_t>(r.stats.delta_file_bytes))
          .field("logical_bytes",
                 static_cast<std::int64_t>(r.stats.logical_bytes))
          .field("stored_bytes",
                 static_cast<std::int64_t>(r.stats.stored_bytes));
    }
    j.timing("total", r.timing).print();
  };
  row("none", none);
  row("sync", sync);
  row("async", async_);
  row("slow-none", slow_none);
  row("inc", inc);
  row("inc-async", inc_async);
  t.print();

  const double nckpt = static_cast<double>(std::max<std::int64_t>(
      1, sync.checkpoints));
  const double sync_per_ckpt_ms =
      (sync.timing.min_s - none.timing.min_s) * 1e3 / nckpt;
  const double async_per_ckpt_ms =
      (async_.timing.min_s - none.timing.min_s) * 1e3 / nckpt;
  // Fraction of the sync snapshot cost the background writer hides; can
  // be noisy-negative on loaded machines, which is still informative.
  const double hidden =
      sync_per_ckpt_ms > 0 ? 1.0 - async_per_ckpt_ms / sync_per_ckpt_ms : 0;
  std::printf("\nper-checkpoint overhead: sync %.3f ms, async %.3f ms "
              "(%.0f%% hidden)\n",
              sync_per_ckpt_ms, async_per_ckpt_ms, hidden * 100.0);

  // Incremental ratio: how much smaller an average delta generation file
  // is than an average full generation file over the slow-churn run.
  const auto& st = inc.stats;
  double incremental_ratio = 0;
  if (st.full_generations > 0 && st.delta_generations > 0 &&
      st.delta_file_bytes > 0) {
    incremental_ratio =
        (static_cast<double>(st.full_file_bytes) / st.full_generations) /
        (static_cast<double>(st.delta_file_bytes) / st.delta_generations);
  }

  // Async hidden fraction of the delta path, over the slow-churn baseline.
  const double n_inc = static_cast<double>(std::max<std::int64_t>(
      1, inc.checkpoints));
  const double inc_per_ckpt_ms =
      (inc.timing.min_s - slow_none.timing.min_s) * 1e3 / n_inc;
  const double inc_async_per_ckpt_ms =
      (inc_async.timing.min_s - slow_none.timing.min_s) * 1e3 / n_inc;
  const double hidden_delta =
      inc_per_ckpt_ms > 0 ? 1.0 - inc_async_per_ckpt_ms / inc_per_ckpt_ms : 0;

  // DeltaPack particle-payload compression, measured directly: encode the
  // slow-churn electron payload and time it against a full synchronous
  // checkpoint commit of the same state.
  auto codec_sim = make_sim(p, /*slow_churn=*/true);
  codec_sim.run(p.steps);
  const auto& sp = codec_sim.species(0);
  std::vector<core::Particle> parts(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(parts.data(), sp.np);
  const auto* raw = reinterpret_cast<const std::byte*>(parts.data());
  const std::size_t raw_bytes = parts.size() * sizeof(core::Particle);
  std::vector<std::byte> packed;
  const auto enc = bench::time_reps(p.reps, 1, [&] {
    packed = elastic::deltapack_encode(raw, raw_bytes,
                                       sizeof(core::Particle));
  });
  const double codec_ratio =
      packed.empty() ? 1.0
                     : static_cast<double>(raw_bytes) /
                           static_cast<double>(packed.size());
  const fs::path cdir = fs::temp_directory_path() / "vpic_ckpt_bench_codec";
  fs::remove_all(cdir);
  fs::create_directories(cdir);
  const auto full_commit = bench::time_reps(p.reps, 1, [&] {
    codec_sim.checkpoint((cdir / "full.ckpt").string());
  });
  fs::remove_all(cdir);
  const double codec_overhead_frac =
      full_commit.min_s > 0 ? enc.min_s / full_commit.min_s : 0;

  const int nm_ranks_verified = verify_nm_restart();

  std::printf("elastic: incremental ratio %.1fx, codec %.2fx at %.1f%% "
              "encode overhead, delta hidden %.0f%%, N->M shapes verified "
              "%d/4\n",
              incremental_ratio, codec_ratio, codec_overhead_frac * 100.0,
              hidden_delta * 100.0, nm_ranks_verified);

  vpic::bench::Json("checkpoint")
      .field("mode", "summary")
      .field("sync_ckpt_ms", sync_per_ckpt_ms)
      .field("async_ckpt_ms", async_per_ckpt_ms)
      .field("hidden_frac", hidden)
      .field("inc_ckpt_ms", inc_per_ckpt_ms)
      .field("inc_async_ckpt_ms", inc_async_per_ckpt_ms)
      .field("hidden_frac_delta", hidden_delta)
      .field("incremental_ratio", incremental_ratio)
      .field("codec_ratio", codec_ratio)
      .field("codec_overhead_frac", codec_overhead_frac)
      .field("nm_ranks_verified", nm_ranks_verified)
      .print();

  const std::string report = bench::emit_bench_json("checkpoint");
  std::string err;
  if (report.empty() || !bench::validate_bench_report(report, &err)) {
    std::fprintf(stderr, "checkpoint: bench report invalid: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("report: %s\n", report.c_str());

  // The N→M proof is cheap and deterministic: enforce it even on smoke
  // runs. The size/timing bars are full-run only — the smoke deck is too
  // small for stable ratios; the checked-in baseline records them.
  if (nm_ranks_verified != 4) {
    std::fprintf(stderr, "checkpoint: N->M restart verified on %d/4 rank "
                         "shapes\n",
                 nm_ranks_verified);
    return 1;
  }
  if (!smoke) {
    if (incremental_ratio < 3.0) {
      std::fprintf(stderr, "checkpoint: incremental ratio %.2fx below the "
                           "3x bar\n",
                   incremental_ratio);
      return 1;
    }
    if (codec_ratio < 1.5 || codec_overhead_frac >= 0.10) {
      std::fprintf(stderr, "checkpoint: codec %.2fx at %.1f%% overhead "
                           "misses the 1.5x/<10%% bar\n",
                   codec_ratio, codec_overhead_frac * 100.0);
      return 1;
    }
  }
  return 0;
}
