// bench/checkpoint.cpp — per-step cost of checkpointing (docs/CHECKPOINT.md):
// the same LPI run stepped three ways — no checkpoints (baseline), periodic
// synchronous checkpoints (the step blocks for encode + file commit), and
// periodic asynchronous checkpoints (the step pays only the deep-copy
// encode; the commit runs on a background pk::Instance). The headline
// numbers are the per-checkpoint overhead of each mode over the baseline
// and the fraction of the sync cost the async path hides.
//
//   ./checkpoint --nx=16 --ny=8 --nz=8 --ppc=4 --steps=40 --every=5 --reps=3
//
// Emits BENCH_checkpoint.json (schema vpic-bench-v1) and self-validates it
// with the shared validator before exiting.
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "ckpt/ckpt.hpp"
#include "core/core.hpp"

namespace core = vpic::core;
namespace ckpt = vpic::ckpt;
namespace bench = vpic::bench;
namespace fs = std::filesystem;

namespace {

struct Params {
  int nx, ny, nz, ppc, steps, every, reps;
};

core::Simulation make_sim(const Params& p) {
  core::decks::LpiParams lpi;
  lpi.nx = p.nx;
  lpi.ny = p.ny;
  lpi.nz = p.nz;
  lpi.ppc = p.ppc;
  lpi.sort_interval = 10;
  auto sim = core::decks::make_lpi(lpi);
  sim.config().energy_interval = 10;
  return sim;
}

struct ModeResult {
  bench::Timing timing;
  std::int64_t checkpoints = 0;
  std::uint64_t file_bytes = 0;
};

/// Time `steps` steps under one checkpoint mode ("none", "sync", "async").
ModeResult run_mode(const Params& p, const std::string& mode) {
  const fs::path dir =
      fs::temp_directory_path() / ("vpic_ckpt_bench_" + mode);
  ModeResult out;
  std::optional<core::Simulation> sim;
  out.timing = bench::time_reps(
      p.reps, /*warmup=*/1,
      [&] {
        sim->run(p.steps);
        sim->checkpoint_wait();
      },
      [&](int) {
        fs::remove_all(dir);
        fs::create_directories(dir);
        sim.emplace(make_sim(p));
        if (mode != "none") {
          sim->config().checkpoint_every = p.every;
          sim->config().checkpoint_path = (dir / "ck").string();
          sim->config().checkpoint_async = mode == "async";
        }
      });
  out.checkpoints = sim->checkpoints_written();
  ckpt::GenerationRing ring((dir / "ck").string(), 3);
  for (std::uint64_t g : ring.generations())
    out.file_bytes = fs::file_size(ring.path_for(g));
  fs::remove_all(dir);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  p.nx = static_cast<int>(bench::flag(argc, argv, "nx", 16));
  p.ny = static_cast<int>(bench::flag(argc, argv, "ny", 8));
  p.nz = static_cast<int>(bench::flag(argc, argv, "nz", 8));
  p.ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 4));
  p.steps = static_cast<int>(bench::flag(argc, argv, "steps", 40));
  p.every = static_cast<int>(bench::flag(argc, argv, "every", 5));
  p.reps = static_cast<int>(bench::flag(argc, argv, "reps", 3));

  std::printf(
      "checkpoint bench: %dx%dx%d ppc=%d, %d steps, checkpoint every %d, "
      "%d reps\n\n",
      p.nx, p.ny, p.nz, p.ppc, p.steps, p.every, p.reps);

  const ModeResult none = run_mode(p, "none");
  const ModeResult sync = run_mode(p, "sync");
  const ModeResult async_ = run_mode(p, "async");

  bench::Table t({"mode", "total ms", "ms/step", "ckpts", "file KiB"});
  const auto row = [&](const char* mode, const ModeResult& r) {
    t.row({mode, bench::fmt("%.3f", r.timing.min_s * 1e3),
           bench::fmt("%.4f", r.timing.min_s * 1e3 / p.steps),
           std::to_string(r.checkpoints),
           bench::fmt("%.1f", static_cast<double>(r.file_bytes) / 1024.0)});
    vpic::bench::Json("checkpoint")
        .field("mode", mode)
        .field("steps", p.steps)
        .field("every", p.every)
        .field("checkpoints", r.checkpoints)
        .field("file_bytes", static_cast<std::int64_t>(r.file_bytes))
        .timing("total", r.timing)
        .print();
  };
  row("none", none);
  row("sync", sync);
  row("async", async_);
  t.print();

  const double nckpt = static_cast<double>(std::max<std::int64_t>(
      1, sync.checkpoints));
  const double sync_per_ckpt_ms =
      (sync.timing.min_s - none.timing.min_s) * 1e3 / nckpt;
  const double async_per_ckpt_ms =
      (async_.timing.min_s - none.timing.min_s) * 1e3 / nckpt;
  // Fraction of the sync snapshot cost the background writer hides; can
  // be noisy-negative on loaded machines, which is still informative.
  const double hidden =
      sync_per_ckpt_ms > 0 ? 1.0 - async_per_ckpt_ms / sync_per_ckpt_ms : 0;
  std::printf("\nper-checkpoint overhead: sync %.3f ms, async %.3f ms "
              "(%.0f%% hidden)\n",
              sync_per_ckpt_ms, async_per_ckpt_ms, hidden * 100.0);
  vpic::bench::Json("checkpoint")
      .field("mode", "summary")
      .field("sync_ckpt_ms", sync_per_ckpt_ms)
      .field("async_ckpt_ms", async_per_ckpt_ms)
      .field("hidden_frac", hidden)
      .print();

  const std::string report = bench::emit_bench_json("checkpoint");
  std::string err;
  if (report.empty() || !bench::validate_bench_report(report, &err)) {
    std::fprintf(stderr, "checkpoint: bench report invalid: %s\n",
                 err.c_str());
    return 1;
  }
  std::printf("report: %s\n", report.c_str());
  return 0;
}
