// fig4_push_vectorization — reproduces Figure 4: runtime of the VPIC
// particle push kernel under the auto / guided / manual / ad hoc
// vectorization strategies, on the laser-plasma instability deck. The
// paper's shape: guided and manual consistently beat auto; ad hoc (the
// VPIC 1.2 library) is matched by manual on x86_64.
//
// Emits one JSON record per strategy; BenchReport writes the aggregate
// BENCH_fig4_push_vectorization.json (schema vpic-bench-v1).
#include <cstdio>

#include "bench_common.hpp"
#include "core/core.hpp"

namespace {

namespace core = vpic::core;
namespace bench = vpic::bench;

core::Simulation make_deck(core::VectorStrategy strat, int nx, int ny,
                           int nz, int ppc, core::ParticleLayout layout) {
  core::decks::LpiParams p;
  p.nx = nx;
  p.ny = ny;
  p.nz = nz;
  p.ppc = ppc;
  p.strategy = strat;
  p.sort_interval = 0;  // measure the push alone, steady particle order
  p.layout = layout;
  auto sim = core::decks::make_lpi(p);
  sim.run(2);  // warm: fields and particle distribution realistic
  return sim;
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = static_cast<int>(bench::flag(argc, argv, "nx", 24));
  const int ny = static_cast<int>(bench::flag(argc, argv, "ny", 12));
  const int nz = static_cast<int>(bench::flag(argc, argv, "nz", 12));
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 24));
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 10));
  // Particle storage layout under test (--layout=aos|soa|aosoa): the
  // strategies are compiled once and instantiated per layout, so Fig. 4
  // can be replayed on any of them.
  const std::string layout_s = bench::flag_str(argc, argv, "layout", "aos");
  const auto layout_opt = core::parse_particle_layout(layout_s);
  if (!layout_opt) {
    std::fprintf(stderr, "unknown --layout=%s (aos|soa|aosoa)\n",
                 layout_s.c_str());
    return 1;
  }
  const core::ParticleLayout layout = *layout_opt;

  std::printf(
      "== Figure 4: particle push runtime vs vectorization strategy "
      "==\nLPI deck %dx%dx%d, ppc %d, %d reps, layout %s\n\n",
      nx, ny, nz, ppc, reps, core::to_string(layout));

  bench::Table t({"strategy", "particles", "push (ms)", "Mp/s", "vs auto"});
  double auto_ms = 0;
  for (const auto strat :
       {core::VectorStrategy::Auto, core::VectorStrategy::Guided,
        core::VectorStrategy::Manual, core::VectorStrategy::AdHoc}) {
    auto sim = make_deck(strat, nx, ny, nz, ppc, layout);
    auto& interp = sim.interpolator();
    auto& acc = sim.accumulator();
    interp.load(sim.fields());
    std::int64_t np = 0;
    for (std::size_t s = 0; s < sim.num_species(); ++s)
      np += sim.species(s).np;

    // The push leaves particles in place (no sort between reps), so the
    // workload is idempotent up to accumulator state: clear it untimed
    // before every rep. Pin the generic per-particle kernels — the
    // strategies themselves are what Fig. 4 compares.
    const bench::Timing tm = bench::time_reps(
        reps, 1,
        [&] {
          for (std::size_t s = 0; s < sim.num_species(); ++s)
            core::advance_species(sim.species(s), interp, acc, sim.grid(),
                                  strat, {}, core::PushPath::Generic);
        },
        [&](int) { acc.clear(); });

    const double mps = static_cast<double>(np) / tm.min_s * 1e-6;
    if (strat == core::VectorStrategy::Auto) auto_ms = tm.min_s;
    t.row({core::to_string(strat), std::to_string(np),
           bench::fmt("%.3f", tm.min_s * 1e3), bench::fmt("%.1f", mps),
           bench::fmt("%.2fx", auto_ms / tm.min_s)});

    bench::Json j("fig4_push_vectorization");
    j.field("strategy", core::to_string(strat))
        .field("layout", core::to_string(layout))
        .field("particles", np)
        .timing("push", tm)
        .field("mparticles_per_s", mps);
    j.print();
  }

  std::printf("\n");
  t.print();
  const std::string path =
      bench::emit_bench_json("fig4_push_vectorization");
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
