// fig4_push_vectorization — reproduces Figure 4: runtime of the VPIC
// particle push kernel under the auto / guided / manual / ad hoc
// vectorization strategies, on the laser-plasma instability deck. The
// paper's shape: guided and manual consistently beat auto; ad hoc (the
// VPIC 1.2 library) is matched by manual on x86_64.
#include <benchmark/benchmark.h>

#include "core/core.hpp"

namespace {

namespace core = vpic::core;

core::Simulation make_deck(core::VectorStrategy strat) {
  core::decks::LpiParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 12;
  p.ppc = 24;
  p.strategy = strat;
  p.sort_interval = 0;  // measure the push alone, steady particle order
  auto sim = core::decks::make_lpi(p);
  sim.run(2);  // warm: fields and particle distribution realistic
  return sim;
}

void BM_ParticlePush(benchmark::State& state) {
  const auto strat = static_cast<core::VectorStrategy>(state.range(0));
  auto sim = make_deck(strat);
  auto& interp = sim.interpolator();
  auto& acc = sim.accumulator();
  interp.load(sim.fields());
  std::int64_t pushed = 0;
  for (auto _ : state) {
    acc.clear();
    for (std::size_t s = 0; s < sim.num_species(); ++s) {
      core::advance_species(sim.species(s), interp, acc, sim.grid(), strat);
      pushed += sim.species(s).np;
    }
  }
  state.SetItemsProcessed(pushed);
  state.SetLabel(core::to_string(strat));
}

}  // namespace

BENCHMARK(BM_ParticlePush)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

BENCHMARK_MAIN();
