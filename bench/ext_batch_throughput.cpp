// ext_batch_throughput — implements the paper's Section-6 proposal:
// "The superlinear strong scaling behavior is a promising optimization for
// running large batches of smaller simulations. Such simulations can be
// used as training datasets..." Given a fixed pool of GPUs and a batch of
// identical small simulations, this harness sweeps the gang size (GPUs
// cooperating per simulation): gang = 1 is naive batching; the sweet spot
// is the smallest gang whose per-GPU grid share fits the LLC — superlinear
// speedup outruns the lost concurrency.
//
// Emits BENCH_ext_batch.json (schema vpic-bench-v1): one record per
// (device, gang size) sweep point plus a per-device summary carrying the
// best gang and its speedup over naive batching; self-validates with the
// shared validator before exiting.
#include <string>

#include "bench_common.hpp"
#include "gpusim/gpusim.hpp"

int main(int argc, char** argv) {
  using namespace vpic;
  const auto cap =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "cap", 500'000));
  const int total_gpus =
      static_cast<int>(bench::flag(argc, argv, "gpus", 64));
  const int steps = static_cast<int>(bench::flag(argc, argv, "steps", 1000));

  std::printf(
      "== Extension (paper Section 6): batch throughput of small "
      "simulations ==\n%d GPUs, %d steps per simulation\n\n",
      total_gpus, steps);

  for (const char* name : {"V100", "A100"}) {
    const auto& dev = gpusim::device(name);
    // Each simulation's grid is ~8x one GPU's cache-fit size: too big to
    // be fast alone, cheap to gang.
    const auto grid = static_cast<std::uint64_t>(
        8.0 * dev.llc_bytes() / 800.0);
    const std::uint64_t particles = grid * 24;
    const auto pts = gpusim::batch_throughput(dev, grid, particles,
                                              total_gpus, steps, {}, {},
                                              777, cap);
    std::printf("%s: %llu grid points, %llu particles per simulation\n",
                name, static_cast<unsigned long long>(grid),
                static_cast<unsigned long long>(particles));
    bench::Table t({"gang size", "concurrent sims", "step/sim (ms)",
                    "sims/s", "fits LLC"});
    double best = 0;
    int best_gang = 1;
    for (const auto& p : pts) {
      if (p.sims_per_second > best) {
        best = p.sims_per_second;
        best_gang = p.gang_size;
      }
    }
    for (const auto& p : pts) {
      t.row({std::to_string(p.gang_size) +
                 (p.gang_size == best_gang ? " *best*" : ""),
             std::to_string(p.concurrent_gangs),
             bench::fmt("%.3f", p.step_seconds_per_sim * 1e3),
             bench::fmt("%.2f", p.sims_per_second),
             p.grid_fits_llc ? "yes" : "no"});
      bench::Json("ext_batch")
          .field("device", name)
          .field("gang_size", p.gang_size)
          .field("concurrent_sims", p.concurrent_gangs)
          .field("step_ms_per_sim", p.step_seconds_per_sim * 1e3)
          .field("sims_per_second", p.sims_per_second)
          .field("grid_fits_llc", p.grid_fits_llc ? 1 : 0)
          .print();
    }
    t.print();
    const double naive = pts.front().sims_per_second;
    std::printf("  best gang (%d GPUs/sim) yields %.2fx the naive batch "
                "throughput\n\n",
                best_gang, best / naive);
    bench::Json("ext_batch")
        .field("device", name)
        .field("summary", 1)
        .field("total_gpus", total_gpus)
        .field("grid_points", static_cast<double>(grid))
        .field("best_gang", best_gang)
        .field("best_sims_per_second", best)
        .field("speedup_over_naive", naive > 0 ? best / naive : 0)
        .print();
  }

  const std::string path = bench::emit_bench_json("ext_batch");
  std::string err;
  if (path.empty() || !bench::validate_bench_report(path, &err)) {
    std::fprintf(stderr, "bench report validation failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s (schema vpic-bench-v1, validated)\n", path.c_str());
  return 0;
}
