// ablation_gpu_aware_mpi — the paper's closing claim (Section 5.5):
// "Additional features like GPU-aware MPI will reduce the communication
// overhead for exchanging particles and enable greater superlinear scaling
// in the future." This harness models that future: the Fig. 10a V100 sweep
// re-run with the staging overhead removed (halved message latency,
// doubled effective link bandwidth — the usual win reported for
// GPU-direct transfers).
#include <vector>

#include "bench_common.hpp"
#include "gpusim/gpusim.hpp"

namespace {

void sweep(const char* label, const vpic::gpusim::DeviceSpec& dev,
           std::uint64_t cap) {
  using namespace vpic::gpusim;
  const std::vector<int> ranks{1, 2, 4, 8, 16, 32};
  const auto pts =
      strong_scaling(dev, 8ull * 7'500, 40'000'000, ranks, {}, {}, 777, cap);
  std::printf("%s:\n", label);
  vpic::bench::Table t(
      {"GPUs", "comm (ms)", "step (ms)", "speedup", "efficiency"});
  for (const auto& p : pts)
    t.row({std::to_string(p.ranks), vpic::bench::fmt("%.3f", p.comm_seconds * 1e3),
           vpic::bench::fmt("%.3f", p.step_seconds * 1e3),
           vpic::bench::fmt("%.1fx", p.speedup),
           vpic::bench::fmt("%.0f%%", 100.0 * p.speedup / p.ideal_speedup)});
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpic;
  const auto cap =
      static_cast<std::uint64_t>(bench::flag(argc, argv, "cap", 500'000));

  std::printf("== Ablation: GPU-aware MPI (paper Section 5.5 future work), "
              "V100/Sierra sweep ==\n\n");
  const auto& base = gpusim::device("V100");
  sweep("(a) host-staged MPI (baseline, Fig. 10a)", base, cap);

  auto gpu_aware = base;
  gpu_aware.link_latency_us = base.link_latency_us * 0.5;
  gpu_aware.link_bw_gbs = base.link_bw_gbs * 2.0;
  sweep("(b) GPU-aware MPI (half latency, double bandwidth)", gpu_aware,
        cap);
  return 0;
}
