// bench/collide.cpp — Takizuka–Abe collision phase cost and tile-level
// balance on a clumped deck (docs/MODULES.md).
//
// The CollisionModule pairs particles per cell, so its cost concentrates
// wherever particles do: the LPI deck's clump_factor hands a static
// contiguous-tile partition one worker with most of the collision work.
// Three measurements, mirroring bench/tile_balance.cpp:
//
//  1. Bit-determinism self-check: the collision-enabled Stealing step
//     must produce identical particle bytes and field energy at 2 and 4
//     workers (voxel-keyed RNG streams make the scatter sequence a pure
//     function of the step, not the schedule). Exits nonzero on any
//     divergence.
//  2. Collision phase cost: an untiled Graph run times every phase; the
//     summed collide[...] seconds give the absolute cost per step and
//     the fraction of the whole step the collision operator adds.
//  3. Modeled makespans: per-tile collide task costs are *measured*
//     serially (Deterministic tiled mode times every phase), then
//     replayed through a static contiguous-tile partition vs the
//     stealing executor's LPT/greedy placement at several virtual
//     worker counts — the repo's modeled-metric idiom, host-independent
//     and stable on a 1-core CI box. The headline is speedup at 4
//     workers.
//
//   ./collide --nx=16 --ny=8 --nz=32 --ppc=8 --clump=8 --tiles=16
//   ./collide --smoke          # CI-sized, no speedup threshold
//
// Emits BENCH_collide.json (schema vpic-bench-v1) and self-validates it.
// Outside --smoke the bench exits nonzero if the 4-worker modeled
// speedup drops below 1.3x (the acceptance bar for collision tiling).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/collide.hpp"
#include "core/core.hpp"
#include "core/decks.hpp"
#include "core/simulation.hpp"
#include "core/tiles.hpp"
#include "pk/pk.hpp"

namespace bench = vpic::bench;
namespace core = vpic::core;
namespace pk = vpic::pk;

namespace {

struct Params {
  int nx, ny, nz, ppc, tiles, steps;
  float clump;
  double nu0;
};

core::Simulation make_colliding(const Params& p) {
  core::decks::LpiParams lp;
  lp.nx = p.nx;
  lp.ny = p.ny;
  lp.nz = p.nz;
  lp.ppc = p.ppc;
  lp.clump_factor = p.clump;
  auto sim = core::decks::make_lpi(lp);
  core::CollisionParams cp;
  cp.nu0 = p.nu0;
  sim.add_module<core::CollisionModule>(cp);
  return sim;
}

/// Particle bytes + field energy must match exactly across worker counts.
bool bitwise_equal(core::Simulation& a, core::Simulation& b) {
  if (a.energies().field != b.energies().field) return false;
  if (a.num_species() != b.num_species()) return false;
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    if (sa.np != sb.np) return false;
    for (core::index_t i = 0; i < sa.np; ++i) {
      const auto pa = sa.p(i);
      const auto pb = sb.p(i);
      if (pa.dx != pb.dx || pa.dy != pb.dy || pa.dz != pb.dz ||
          pa.i != pb.i || pa.ux != pb.ux || pa.uy != pb.uy ||
          pa.uz != pb.uz || pa.w != pb.w)
        return false;
    }
  }
  return true;
}

/// Measured per-tile collision costs: Deterministic tiled mode times
/// every phase serially; take, per tile, the min-across-steps of the
/// per-step sum of that tile's collide phases (min-of-reps denoiser).
std::vector<double> measure_collide_costs(core::Simulation& sim, int nt,
                                          int steps) {
  std::vector<double> best(static_cast<std::size_t>(nt), 0.0);
  std::vector<double> cur(static_cast<std::size_t>(nt), 0.0);
  for (int s = 0; s < steps; ++s) {
    sim.step();
    std::fill(cur.begin(), cur.end(), 0.0);
    for (const auto& ps : sim.last_phase_stats()) {
      if (ps.name.rfind("collide[", 0) != 0) continue;
      const auto dot = ps.name.rfind(".t");
      if (dot == std::string::npos) continue;
      const int t = std::atoi(ps.name.c_str() + dot + 2);
      if (t >= 0 && t < nt) cur[static_cast<std::size_t>(t)] += ps.seconds;
    }
    for (int t = 0; t < nt; ++t)
      if (s == 0 || cur[static_cast<std::size_t>(t)] <
                        best[static_cast<std::size_t>(t)])
        best[static_cast<std::size_t>(t)] = cur[static_cast<std::size_t>(t)];
  }
  return best;
}

/// Static baseline: worker w owns tiles [w*nt/W, (w+1)*nt/W).
double static_makespan(const std::vector<double>& cost, int workers) {
  const int nt = static_cast<int>(cost.size());
  double worst = 0;
  for (int w = 0; w < workers; ++w) {
    const int lo = w * nt / workers;
    const int hi = (w + 1) * nt / workers;
    double sum = 0;
    for (int t = lo; t < hi; ++t) sum += cost[static_cast<std::size_t>(t)];
    worst = std::max(worst, sum);
  }
  return worst;
}

/// Greedy list schedule (largest task first to the least-loaded worker):
/// what the stealing executor's LPT seeding + steal-half tracks.
double stealing_makespan(const std::vector<double>& cost, int workers) {
  std::vector<std::size_t> order(cost.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&cost](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  for (const std::size_t t : order) {
    auto it = std::min_element(load.begin(), load.end());
    *it += cost[t];
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "smoke");
  Params p;
  p.nx = static_cast<int>(bench::flag(argc, argv, "nx", smoke ? 8 : 16));
  p.ny = static_cast<int>(bench::flag(argc, argv, "ny", smoke ? 4 : 8));
  p.nz = static_cast<int>(bench::flag(argc, argv, "nz", smoke ? 16 : 32));
  p.ppc = static_cast<int>(bench::flag(argc, argv, "ppc", smoke ? 2 : 8));
  p.tiles = static_cast<int>(bench::flag(argc, argv, "tiles", smoke ? 8 : 16));
  p.steps = static_cast<int>(bench::flag(argc, argv, "steps", smoke ? 4 : 10));
  p.clump = static_cast<float>(bench::flag(argc, argv, "clump", 8));
  // bench::flag is integer-only; the collision frequency comes in milli
  // units (--nu0_milli=50 -> nu0 = 0.05).
  p.nu0 = static_cast<double>(bench::flag(argc, argv, "nu0_milli", 50)) / 1e3;
  pk::initialize(
      static_cast<int>(bench::flag(argc, argv, "kernel_threads", 1)));

  std::printf(
      "collision bench: %dx%dx%d ppc=%d clump=%.1f tiles=%d nu0=%.2g%s\n\n",
      p.nx, p.ny, p.nz, p.ppc, static_cast<double>(p.clump), p.tiles, p.nu0,
      smoke ? " (smoke)" : "");

  // -- 1. bit-determinism self-check (2 vs 4 stealing workers) ----------
  {
    Params small = p;
    small.nx = std::min(p.nx, 12);
    small.nz = std::min(p.nz, 8);
    small.ppc = std::min(p.ppc, 4);
    core::Simulation w2 = make_colliding(small);
    core::Simulation w4 = make_colliding(small);
    for (auto* s : {&w2, &w4}) {
      s->config().tiles.enabled = true;
      s->config().tiles.count = 4;
      s->config().tiles.exec = core::TileExec::Stealing;
    }
    w2.config().tiles.workers = 2;
    w4.config().tiles.workers = 4;
    const int check_steps = smoke ? 15 : 30;  // crosses the sort interval
    w2.run(check_steps);
    w4.run(check_steps);
    if (!bitwise_equal(w2, w4)) {
      std::fprintf(stderr,
                   "collide: stealing step diverged between 2 and 4 workers "
                   "— collision bit-determinism broken\n");
      return 1;
    }
    std::printf(
        "bit-determinism check: 2 == 4 stealing workers over %d steps OK\n\n",
        check_steps);
  }

  // -- 2. collision phase cost (untiled, every phase timed) -------------
  double collide_s = 0, total_s = 0;
  std::uint64_t pairs = 0;
  {
    core::Simulation sim = make_colliding(p);
    sim.config().scheduler = core::StepScheduler::Graph;
    auto* col =
        static_cast<core::CollisionModule*>(sim.find_module("collide"));
    sim.run(2);  // warmup
    const std::uint64_t pairs0 = col->pairs_scattered();
    for (int s = 0; s < p.steps; ++s) {
      sim.step();
      for (const auto& ps : sim.last_phase_stats()) {
        total_s += ps.seconds;
        if (ps.name.rfind("collide[", 0) == 0) collide_s += ps.seconds;
      }
    }
    pairs = (col->pairs_scattered() - pairs0) /
            static_cast<std::uint64_t>(p.steps);
  }
  const double collide_ms = collide_s * 1e3 / p.steps;
  const double frac = total_s > 0 ? collide_s / total_s : 0;
  std::printf(
      "collision phase: %.3f ms/step, %.1f%% of the step, %llu pairs/step\n\n",
      collide_ms, 100 * frac, static_cast<unsigned long long>(pairs));

  // -- 3. measured per-tile collide costs, modeled schedules ------------
  core::Simulation sim = make_colliding(p);
  sim.config().tiles.enabled = true;
  sim.config().tiles.count = p.tiles;
  sim.config().tiles.exec = core::TileExec::Deterministic;
  sim.run(2);  // warmup: first touch, bucketing
  const int nt = sim.tile_map().count();
  const std::vector<double> cost = measure_collide_costs(sim, nt, p.steps);
  const double total = std::accumulate(cost.begin(), cost.end(), 0.0);

  bench::Table t(
      {"workers", "static ms", "stealing ms", "speedup", "ideal ms"});
  double speedup_4w = 0;
  for (const int w : {2, 4, 8}) {
    const double st = static_makespan(cost, w);
    const double sl = stealing_makespan(cost, w);
    const double speedup = sl > 0 ? st / sl : 0;
    if (w == 4) speedup_4w = speedup;
    t.row({std::to_string(w), bench::fmt("%.3f", st * 1e3),
           bench::fmt("%.3f", sl * 1e3), bench::fmt("%.2fx", speedup),
           bench::fmt("%.3f", total / w * 1e3)});
    bench::Json("collide")
        .field("workers", w)
        .field("tiles", nt)
        .field("static_ms", st * 1e3)
        .field("stealing_ms", sl * 1e3)
        .field("speedup", speedup)
        .field("ideal_ms", total / w * 1e3)
        .print();
  }
  t.print();

  bench::Json("collide")
      .field("summary", 1)
      .field("tiles", nt)
      .field("clump_factor", static_cast<double>(p.clump))
      .field("collide_ms_per_step", collide_ms)
      .field("collide_frac", frac)
      .field("pairs_per_step", static_cast<double>(pairs))
      .field("speedup_4w", speedup_4w)
      .field("bit_identical", 1)
      .print();

  const std::string path = bench::emit_bench_json("collide");
  std::string err;
  if (path.empty() || !bench::validate_bench_report(path, &err)) {
    std::fprintf(stderr, "bench report validation failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("\nwrote %s (schema vpic-bench-v1, validated)\n", path.c_str());

  if (!smoke && speedup_4w < 1.3) {
    std::fprintf(stderr,
                 "collide: 4-worker stealing speedup %.2fx is below the "
                 "1.3x acceptance bar\n",
                 speedup_4w);
    return 1;
  }
  return 0;
}
