// fig7_push_sorting_gpu — reproduces Figure 7: impact of the sorting order
// (random, standard, strided, tiled-strided) on the VPIC particle push
// across four GPU architectures. Cell-index sequences come from a real
// LPI-deck particle distribution; each order is produced by the actual
// sorting library, then the push is timed by the analytic device model.
//
// Expected shape: on NVIDIA, strided > 2x faster than standard and
// tiled-strided ~2x strided; on AMD, random/standard an order of magnitude
// slower than strided/tiled-strided.
//
// The "run-aware" column models the standard order pushed through the
// run-aware pipeline (PushModelParams::run_aware: one gather + one batched
// scatter per same-cell run, docs/PUSH.md) — the modeled-GPU counterpart
// of the CPU engine's fast path. One JSON record per (GPU, order) lands in
// BENCH_fig7_push_sorting_gpu.json (schema vpic-bench-v1).
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "gpusim/gpusim.hpp"

namespace {

using namespace vpic;
using pk::index_t;

std::vector<std::uint32_t> order_cells(const pk::View<std::uint32_t, 1>& keys,
                                       sort::SortOrder order,
                                       std::uint32_t tile) {
  pk::View<std::uint32_t, 1> k("k", keys.size());
  pk::View<std::uint32_t, 1> payload("p", keys.size());
  pk::deep_copy(k, keys);
  sort::sort_pairs(order, k, payload, tile);
  return {k.data(), k.data() + k.size()};
}

}  // namespace

int main(int argc, char** argv) {
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 8));

  // Realistic cell occupancy: a short LPI run, then extract cell keys.
  core::decks::LpiParams lp;
  lp.nx = static_cast<int>(vpic::bench::flag(argc, argv, "nx", 96));
  lp.ny = static_cast<int>(vpic::bench::flag(argc, argv, "ny", 48));
  lp.nz = static_cast<int>(vpic::bench::flag(argc, argv, "nz", 48));
  lp.ppc = ppc;
  lp.sort_interval = 0;
  auto sim = core::decks::make_lpi(lp);
  sim.run(5);
  auto keys = sim.species(0).cell_keys();
  const auto grid_points = static_cast<std::uint64_t>(sim.grid().nv());

  std::printf(
      "== Figure 7: particle push runtime vs sorting order (analytic GPU "
      "model) ==\nLPI deck %dx%dx%d, %lld particles over %llu cells\n\n",
      lp.nx, lp.ny, lp.nz, static_cast<long long>(keys.size()),
      static_cast<unsigned long long>(grid_points));

  bench::Table t({"GPU", "random (ms)", "standard (ms)", "strided (ms)",
                  "tiled-strided (ms)", "run-aware (ms)",
                  "best vs standard"});
  for (const auto& name : {"A100", "H100", "MI250", "MI300A"}) {
    const auto& dev = gpusim::device(name);
    const auto tile = static_cast<std::uint32_t>(3 * dev.core_count);
    std::vector<std::string> row{name};
    double std_ms = 0, best_ms = 1e30;
    for (const auto order :
         {sort::SortOrder::Random, sort::SortOrder::Standard,
          sort::SortOrder::Strided, sort::SortOrder::TiledStrided}) {
      const auto cells = order_cells(keys, order, tile);
      const auto res = gpusim::model_push(dev, cells, grid_points);
      const double ms = res.timing.seconds * 1e3;
      if (order == sort::SortOrder::Standard) std_ms = ms;
      if (order != sort::SortOrder::Random) best_ms = std::min(best_ms, ms);
      row.push_back(bench::fmt("%.4f", ms));

      bench::Json j("fig7_push_sorting_gpu");
      j.field("gpu", name)
          .field("order", sort::to_string(order))
          .field("particles", static_cast<std::int64_t>(res.particles))
          .field("runs", static_cast<std::int64_t>(res.runs))
          .field("push_ms", ms)
          .field("pushes_per_ns", res.pushes_per_ns);
      j.print();
    }
    // Run-aware pipeline on the standard (cell-sorted) order, per particle
    // layout: the run-segmentation key sweep streams a full 32 B record
    // through AoS but only the 4 B cell plane for SoA/AoSoA
    // (core/particle_layout.hpp), so the layouts model differently here.
    for (const core::ParticleLayout layout : core::kAllParticleLayouts) {
      gpusim::PushModelParams pm;
      pm.run_aware = true;
      pm.layout = layout;
      const auto cells =
          order_cells(keys, sort::SortOrder::Standard, tile);
      const auto res = gpusim::model_push(dev, cells, grid_points, pm);
      const double ms = res.timing.seconds * 1e3;
      best_ms = std::min(best_ms, ms);
      if (layout == core::ParticleLayout::AoS)
        row.push_back(bench::fmt("%.4f", ms));

      bench::Json j("fig7_push_sorting_gpu");
      j.field("gpu", name)
          .field("order", std::string("standard+run_aware/") +
                              core::to_string(layout))
          .field("particles", static_cast<std::int64_t>(res.particles))
          .field("runs", static_cast<std::int64_t>(res.runs))
          .field("push_ms", ms)
          .field("pushes_per_ns", res.pushes_per_ns);
      j.print();
    }
    row.push_back(bench::fmt("%.1fx", std_ms / best_ms));
    t.row(std::move(row));
  }
  std::printf("\n");
  t.print();
  const std::string path = bench::emit_bench_json("fig7_push_sorting_gpu");
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
