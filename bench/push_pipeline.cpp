// push_pipeline — the sort→push synergy microbench (docs/PUSH.md): on a
// cell-sorted (Standard-order) LPI particle distribution, time each
// vectorization strategy's generic per-particle push against its
// run-aware variant (hoisted interpolator gathers + per-run batched
// current deposits). Emits one JSON record per strategy; BenchReport
// writes the aggregate BENCH_push_pipeline.json (schema vpic-bench-v1),
// which the CI perf-smoke step validates.
//
// Flags: --nx/--ny/--nz/--ppc (deck size), --reps, --min-speedup=<x100>
// (exit non-zero unless every strategy's run-aware speedup is at least
// value/100 — used for local acceptance runs, not CI smoke).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/core.hpp"
#include "sort/runs.hpp"

namespace {

namespace core = vpic::core;
namespace bench = vpic::bench;
namespace pk = vpic::pk;
using pk::index_t;

struct Snapshot {
  std::vector<std::vector<core::Particle>> p;  // canonical AoS records
  std::vector<index_t> np;
};

Snapshot take_snapshot(core::Simulation& sim) {
  Snapshot s;
  for (std::size_t i = 0; i < sim.num_species(); ++i) {
    auto& sp = sim.species(i);
    std::vector<core::Particle> copy(static_cast<std::size_t>(sp.np));
    sp.p.export_aos(copy.data(), sp.np);
    s.p.push_back(std::move(copy));
    s.np.push_back(sp.np);
  }
  return s;
}

void restore_snapshot(core::Simulation& sim, const Snapshot& s) {
  for (std::size_t i = 0; i < sim.num_species(); ++i) {
    auto& sp = sim.species(i);
    sp.p.import_aos(s.p[i].data(), s.np[i]);
    sp.np = s.np[i];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = static_cast<int>(bench::flag(argc, argv, "nx", 48));
  const int ny = static_cast<int>(bench::flag(argc, argv, "ny", 24));
  const int nz = static_cast<int>(bench::flag(argc, argv, "nz", 24));
  const int ppc = static_cast<int>(bench::flag(argc, argv, "ppc", 16));
  const int reps = static_cast<int>(bench::flag(argc, argv, "reps", 5));
  const double min_speedup =
      static_cast<double>(bench::flag(argc, argv, "min-speedup", 0)) / 100.0;

  std::printf(
      "== push_pipeline: generic vs run-aware push on cell-sorted input "
      "==\nLPI deck %dx%dx%d, ppc %d, %d reps\n\n",
      nx, ny, nz, ppc, reps);

  bench::Table t({"strategy", "particles", "runs", "mean run",
                  "generic (ms)", "run-aware (ms)", "speedup"});
  bool ok = true;

  for (const auto strat :
       {core::VectorStrategy::Auto, core::VectorStrategy::Guided,
        core::VectorStrategy::Manual}) {
    core::decks::LpiParams p;
    p.nx = nx;
    p.ny = ny;
    p.nz = nz;
    p.ppc = ppc;
    p.strategy = strat;
    p.sort_interval = 0;  // we sort explicitly below
    auto sim = core::decks::make_lpi(p);
    sim.run(2);  // realistic fields + phase-mixed distribution

    // Cell-sort every species (Standard order) and verify with the
    // order_checks oracle — the fast path's claimed precondition.
    index_t total_np = 0, total_runs = 0;
    for (std::size_t s = 0; s < sim.num_species(); ++s) {
      auto& sp = sim.species(s);
      core::sort_particles(sp, vpic::sort::SortOrder::Standard, 0, 1,
                           sim.grid().nv());
      const auto keys = sp.cell_keys();
      if (!vpic::sort::cell_sorted_exact(keys)) {
        std::fprintf(stderr, "input not cell-sorted after Standard sort\n");
        return 1;
      }
      std::vector<vpic::sort::CellRun> runs;
      const auto& pp = sp.p;
      vpic::sort::segment_runs(
          sp.np, [&pp](index_t i) { return pp.cell(i); }, runs);
      total_np += sp.np;
      total_runs += static_cast<index_t>(runs.size());
    }

    sim.interpolator().load(sim.fields());
    const Snapshot snap = take_snapshot(sim);
    auto& interp = sim.interpolator();
    auto& acc = sim.accumulator();

    auto time_path = [&](core::PushPath path) {
      return bench::time_reps(
          reps, 1,
          [&] {
            for (std::size_t s = 0; s < sim.num_species(); ++s)
              core::advance_species(sim.species(s), interp, acc,
                                    sim.grid(), strat, {}, path);
          },
          [&](int) {
            restore_snapshot(sim, snap);
            acc.clear();
          });
    };

    const bench::Timing tg = time_path(core::PushPath::Generic);
    const bench::Timing tr = time_path(core::PushPath::RunAware);
    const double speedup = tg.min_s / tr.min_s;
    const double mean_run = static_cast<double>(total_np) /
                            static_cast<double>(total_runs);
    if (min_speedup > 0 && speedup < min_speedup) ok = false;

    t.row({core::to_string(strat), std::to_string(total_np),
           std::to_string(total_runs), bench::fmt("%.1f", mean_run),
           bench::fmt("%.3f", tg.min_s * 1e3),
           bench::fmt("%.3f", tr.min_s * 1e3),
           bench::fmt("%.2fx", speedup)});

    bench::Json j("push_pipeline");
    j.field("strategy", core::to_string(strat))
        .field("order", "standard")
        .field("particles", static_cast<std::int64_t>(total_np))
        .field("runs", static_cast<std::int64_t>(total_runs))
        .field("mean_run", mean_run)
        .timing("generic", tg)
        .timing("run_aware", tr)
        .field("speedup", speedup);
    j.print();
  }

  std::printf("\n");
  t.print();
  const std::string path = bench::emit_bench_json("push_pipeline");
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  if (min_speedup > 0 && !ok) {
    std::fprintf(stderr, "FAIL: speedup below %.2fx\n", min_speedup);
    return 1;
  }
  return 0;
}
